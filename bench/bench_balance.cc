// Experiment BAL — Definition 2.1 substrate: measuring β-balance.
//
// Tables produced:
//   A: generator targets vs measured balance (exact enumeration for small
//      n, sampled lower bound + per-edge certificate for all n).
//   B: Eulerian graphs are exactly 1-balanced; the paper's encodings hit
//      their advertised O(β log 1/ε) / 2β certificates (cross-checked in
//      the lower-bound benches).

#include <benchmark/benchmark.h>

#include "graph/balance.h"
#include "graph/generators.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void TableA() {
  PrintBanner("BAL/A", "Generator balance: target vs measured");
  PrintRow({"n", "target b", "exact", "sampled LB", "certificate"});
  PrintRule(5);
  for (int n : {12, 18}) {
    for (double beta : {1.0, 2.0, 8.0}) {
      Rng gen_rng(static_cast<uint64_t>(n * beta));
      const DirectedGraph g = RandomBalancedDigraph(n, 0.5, beta, gen_rng);
      const double exact = MeasureBalanceExact(g);
      Rng sample_rng(3);
      const double sampled = MeasureBalanceSampled(g, sample_rng, 300);
      const auto certificate = PerEdgeBalanceCertificate(g);
      PrintRow({I(n), F(beta, 1), F(exact, 3), F(sampled, 3),
                certificate ? F(*certificate, 3) : "none"});
    }
  }
  std::printf("(sampled <= exact <= certificate must hold on every row)\n");
}

void TableB() {
  PrintBanner("BAL/B", "Eulerian digraphs are exactly 1-balanced");
  PrintRow({"n", "extra cycles", "exact balance"});
  PrintRule(3);
  for (int cycles : {4, 16, 64}) {
    Rng rng(static_cast<uint64_t>(cycles));
    const DirectedGraph g = RandomEulerianDigraph(12, cycles, 6, rng);
    PrintRow({I(12), I(cycles), F(MeasureBalanceExact(g), 6)});
  }
  std::printf("(beta = 1 exactly: these are the beta=1 extreme of the\n"
              " paper's balanced-graph family)\n");
}

void BM_MeasureBalanceExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.5, 4.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureBalanceExact(g));
  }
}
BENCHMARK(BM_MeasureBalanceExact)->Arg(10)->Arg(14)->Arg(18);

void BM_MeasureBalanceSampled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.2, 4.0, rng);
  Rng sample_rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureBalanceSampled(g, sample_rng, 100));
  }
}
BENCHMARK(BM_MeasureBalanceSampled)->Arg(64)->Arg(256);

void BM_PerEdgeCertificate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.3, 4.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerEdgeBalanceCertificate(g));
  }
}
BENCHMARK(BM_PerEdgeCertificate)->Arg(64)->Arg(256);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_balance.json");
  dcs::TableA();
  dcs::TableB();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
