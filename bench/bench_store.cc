// Experiment STORE — the disk-backed sketch store's restart tiers.
//
// Two sections:
//   A: restart-to-full-QPS through real dcs_server worker processes. A
//      populated worker is drained (SIGTERM seals its segment and dumps
//      the hottest cache entries), then restarted two ways: cold (empty
//      store directory — the client's Repair must re-send every graph)
//      and warm (same store directory — boot warm-loads registrations
//      and the cache snapshot, Repair reattaches by id + checksum with
//      no graph bytes on the wire). Both restarts must answer every
//      batch bit-identically to the pre-restart baseline.
//   B: in-process segment I/O micro-timings — append+seal, reopen, read
//      back, fsck — for the same object mix.
//
// Results are printed as tables and written to BENCH_store.json
// (override with --out FILE).

#include <signal.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "json_writer.h"
#include "serve/cluster.h"
#include "serve/cluster_client.h"
#include "serve/transport.h"
#include "serve/worker_process.h"
#include "sketch/serialization.h"
#include "store/sketch_store.h"
#include "table.h"
#include "util/bitio.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr int kObjects = 12;
constexpr int kVertices = 256;
constexpr int kEdges = 4096;
constexpr int kSidesPerObject = 64;
constexpr int kTrialsPerMode = 2;

struct Workload {
  std::vector<DirectedGraph> graphs;
  std::vector<std::vector<VertexSet>> sides;  // one set per object
};

Workload MakeWorkload() {
  Workload workload;
  for (int k = 0; k < kObjects; ++k) {
    Rng rng(1000 + static_cast<uint64_t>(k));
    DirectedGraph graph(kVertices);
    for (int e = 0; e < kEdges; ++e) {
      const int u = static_cast<int>(rng.UniformInt(kVertices));
      int v = (u + 1) % kVertices;
      if (rng.Bernoulli(0.5)) v = (u + 2 + static_cast<int>(
                                       rng.UniformInt(kVertices - 2))) %
                                  kVertices;
      if (v == u) v = (u + 1) % kVertices;
      graph.AddEdge(u, v, 0.25 + rng.UniformDouble());
    }
    workload.graphs.push_back(std::move(graph));
    std::vector<VertexSet> sides;
    for (int s = 0; s < kSidesPerObject; ++s) {
      VertexSet side(static_cast<size_t>(kVertices), 0);
      for (auto& bit : side) bit = rng.Bernoulli(0.5) ? 1 : 0;
      sides.push_back(std::move(side));
    }
    workload.sides.push_back(std::move(sides));
  }
  return workload;
}

TransportOptions BenchTransport() {
  TransportOptions transport;
  transport.connect_timeout_ms = 500;
  transport.io_timeout_ms = 5000;
  transport.reconnect_base_ms = 1;
  transport.reconnect_cap_ms = 4;
  transport.max_connect_attempts = 3;
  return transport;
}

struct RestartRecord {
  std::string mode;  // "cold" | "warm"
  int objects = kObjects;
  double ms_ready = 0;        // spawn → first successful ping
  double ms_repair = 0;       // HealthCheck + Repair
  double ms_answers = 0;      // every object's batch answered
  double ms_to_full_qps = 0;  // spawn → last answer verified
  int64_t reattaches = 0;     // replicas revived without graph bytes
  bool answers_bit_identical = false;
};

struct SectionAResult {
  bool ran = false;
  std::string error;
  std::vector<RestartRecord> best;    // one per mode (min ms_to_full_qps)
  std::vector<RestartRecord> trials;  // every trial, for the JSON
};

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Spawns a worker on `store_dir`, waits for ready, repairs the client's
// replicas, answers every object's batch, and drains the worker. Returns
// the timing breakdown; `baseline` is the pre-restart answers.
StatusOr<RestartRecord> RunRestartTrial(
    const std::string& mode, const std::string& store_dir,
    const Endpoint& endpoint, ClusterClient& client,
    const Workload& workload,
    const std::vector<ClusterClient::ObjectHandle>& handles,
    const std::vector<std::vector<double>>& baseline) {
  ClusterWorkerOptions worker_options;
  worker_options.store_dir = store_dir;
  RestartRecord record;
  record.mode = mode;
  const int64_t reattached_before = client.reattached_replicas();

  const auto t0 = std::chrono::steady_clock::now();
  DCS_ASSIGN_OR_RETURN(WorkerProcess worker,
                       SpawnWorker(DCS_SERVER_PATH, endpoint, worker_options));
  DCS_RETURN_IF_ERROR(WaitForWorkerReady(endpoint, 10000));
  record.ms_ready = MsSince(t0);

  const auto t1 = std::chrono::steady_clock::now();
  DCS_RETURN_IF_ERROR(client.HealthCheck());
  DCS_RETURN_IF_ERROR(client.Repair().status());
  record.ms_repair = MsSince(t1);

  const auto t2 = std::chrono::steady_clock::now();
  record.answers_bit_identical = true;
  for (int k = 0; k < kObjects; ++k) {
    auto answers = client.AnswerBatch(handles[static_cast<size_t>(k)],
                                      workload.sides[static_cast<size_t>(k)]);
    if (!answers.ok()) {
      (void)KillWorker(worker, SIGTERM);
      (void)ReapWorker(worker, /*blocking=*/true);
      return answers.status();
    }
    if (!BitIdentical(*answers, baseline[static_cast<size_t>(k)])) {
      record.answers_bit_identical = false;
    }
  }
  record.ms_answers = MsSince(t2);
  record.ms_to_full_qps = MsSince(t0);
  record.reattaches = client.reattached_replicas() - reattached_before;

  DCS_RETURN_IF_ERROR(KillWorker(worker, SIGTERM));
  DCS_RETURN_IF_ERROR(ReapWorker(worker, /*blocking=*/true));
  return record;
}

SectionAResult SectionRestart(const Workload& workload) {
  PrintBanner("STORE/A",
              "Restart-to-full-QPS: cold (re-send every graph) vs warm "
              "(store-backed reattach), bit-identity gated");
  SectionAResult result;

  char dir_template[] = "/tmp/dcs_bench_store_XXXXXX";
  char* scratch = ::mkdtemp(dir_template);
  if (scratch == nullptr) {
    result.error = "mkdtemp failed";
    return result;
  }
  const std::string scratch_dir = scratch;
  const std::string warm_store = scratch_dir + "/store";
  const std::string socket_path = scratch_dir + "/w.sock";
  auto cleanup = [&scratch_dir] {
    const std::string command = "rm -rf '" + scratch_dir + "'";
    (void)std::system(command.c_str());
  };

  auto endpoint_or = ParseEndpoint("unix:" + socket_path);
  if (!endpoint_or.ok()) {
    result.error = endpoint_or.status().ToString();
    cleanup();
    return result;
  }
  const Endpoint endpoint = *endpoint_or;

  // Baseline: populate the store and the cache, record every answer.
  ClusterWorkerOptions worker_options;
  worker_options.store_dir = warm_store;
  auto spawned = SpawnWorker(DCS_SERVER_PATH, endpoint, worker_options);
  if (!spawned.ok() || !WaitForWorkerReady(endpoint, 10000).ok()) {
    result.error = spawned.ok() ? "baseline worker never became ready"
                                : spawned.status().ToString();
    cleanup();
    return result;
  }
  ClusterClientOptions client_options;
  client_options.replication = 1;
  client_options.transport = BenchTransport();
  ClusterClient client({endpoint}, client_options);
  std::vector<ClusterClient::ObjectHandle> handles;
  std::vector<std::vector<double>> baseline;
  for (int k = 0; k < kObjects; ++k) {
    auto handle =
        client.RegisterReplicated(workload.graphs[static_cast<size_t>(k)]);
    if (!handle.ok()) {
      result.error = handle.status().ToString();
      cleanup();
      return result;
    }
    handles.push_back(*handle);
    auto answers =
        client.AnswerBatch(*handle, workload.sides[static_cast<size_t>(k)]);
    if (!answers.ok()) {
      result.error = answers.status().ToString();
      cleanup();
      return result;
    }
    baseline.push_back(*answers);
  }
  // Drain: seals the segment and snapshots the hottest cache entries.
  if (!KillWorker(*spawned, SIGTERM).ok() ||
      !ReapWorker(*spawned, /*blocking=*/true).ok()) {
    result.error = "baseline drain failed";
    cleanup();
    return result;
  }

  PrintRow({"mode", "trial", "ready(ms)", "repair(ms)", "answers(ms)",
            "total(ms)", "reattach", "identical"});
  PrintRule(8);
  for (const std::string mode : {"cold", "warm"}) {
    RestartRecord best;
    best.ms_to_full_qps = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < kTrialsPerMode; ++trial) {
      // Cold restarts get a fresh empty directory: the respawn is
      // amnesiac and Repair must fall back to full re-registration.
      const std::string store_dir =
          mode == "cold"
              ? scratch_dir + "/cold" + std::to_string(trial)
              : warm_store;
      auto record = RunRestartTrial(mode, store_dir, endpoint, client,
                                    workload, handles, baseline);
      if (!record.ok()) {
        result.error = record.status().ToString();
        cleanup();
        return result;
      }
      PrintRow({mode, I(trial), F(record->ms_ready, 1),
                F(record->ms_repair, 1), F(record->ms_answers, 1),
                F(record->ms_to_full_qps, 1), I(record->reattaches),
                record->answers_bit_identical ? "yes" : "NO"});
      result.trials.push_back(*record);
      if (record->ms_to_full_qps < best.ms_to_full_qps) best = *record;
    }
    result.best.push_back(best);
  }
  cleanup();
  result.ran = true;
  std::printf(
      "(cold re-sends all %d graphs; warm boots from the sealed segment\n"
      " and cache snapshot, then reattaches by id + graph checksum)\n",
      kObjects);
  return result;
}

struct SegmentIoRecord {
  int objects = kObjects;
  int64_t bytes = 0;
  double ms_append_seal = 0;
  double ms_reopen = 0;
  double ms_read_all = 0;
  double ms_fsck = 0;
  bool round_trip_identical = false;
};

SegmentIoRecord SectionSegmentIo(const Workload& workload) {
  PrintBanner("STORE/B",
              "In-process segment I/O: append+seal, reopen, read back, "
              "fsck");
  SegmentIoRecord record;
  char dir_template[] = "/tmp/dcs_bench_store_io_XXXXXX";
  char* scratch = ::mkdtemp(dir_template);
  if (scratch == nullptr) return record;
  const std::string dir = scratch;

  std::vector<std::vector<uint8_t>> payloads;
  std::vector<int64_t> bit_counts;
  for (const DirectedGraph& graph : workload.graphs) {
    BitWriter writer;
    SerializeDirectedGraph(graph, writer);
    record.bytes += static_cast<int64_t>(writer.bytes().size());
    payloads.emplace_back(writer.bytes().begin(), writer.bytes().end());
    bit_counts.push_back(writer.bit_count());
  }

  bool ok = true;
  const auto t0 = std::chrono::steady_clock::now();
  {
    auto store = SketchStore::Open(dir);
    ok = store.ok();
    for (int k = 0; ok && k < kObjects; ++k) {
      ok = (*store)
               ->Put(k, StreamKind::kDirectedGraph,
                     payloads[static_cast<size_t>(k)],
                     bit_counts[static_cast<size_t>(k)])
               .ok();
    }
    if (ok) ok = (*store)->Seal().ok();
  }
  record.ms_append_seal = MsSince(t0);

  const auto t1 = std::chrono::steady_clock::now();
  auto reopened = SketchStore::Open(dir);
  record.ms_reopen = MsSince(t1);
  ok = ok && reopened.ok();

  const auto t2 = std::chrono::steady_clock::now();
  record.round_trip_identical = ok;
  for (int k = 0; ok && k < kObjects; ++k) {
    auto object = (*reopened)->Get(k);
    if (!object.ok() ||
        object->bytes != payloads[static_cast<size_t>(k)] ||
        object->bit_count != bit_counts[static_cast<size_t>(k)]) {
      record.round_trip_identical = false;
    }
  }
  record.ms_read_all = MsSince(t2);

  const auto t3 = std::chrono::steady_clock::now();
  auto fsck = FsckSketchStore(dir);
  record.ms_fsck = MsSince(t3);
  if (!fsck.ok() || !fsck->clean()) record.round_trip_identical = false;

  PrintRow({"objects", "bytes", "append+seal(ms)", "reopen(ms)",
            "read(ms)", "fsck(ms)", "identical"});
  PrintRule(7);
  PrintRow({I(record.objects), I(record.bytes), F(record.ms_append_seal, 2),
            F(record.ms_reopen, 2), F(record.ms_read_all, 2),
            F(record.ms_fsck, 2),
            record.round_trip_identical ? "yes" : "NO"});
  const std::string command = "rm -rf '" + dir + "'";
  (void)std::system(command.c_str());
  return record;
}

void WriteJson(const std::string& path, const SectionAResult& restart,
               const SegmentIoRecord& segment_io) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("objects", kObjects);
  root.Set("vertices", kVertices);
  root.Set("edges", kEdges);
  root.Set("sides_per_object", kSidesPerObject);
  JsonValue best = JsonValue::MakeArray();
  bool all_identical = restart.ran;
  double ms_cold = 0, ms_warm = 0;
  for (const RestartRecord& r : restart.best) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("mode", r.mode);
    entry.Set("objects", r.objects);
    entry.Set("ms_ready", r.ms_ready);
    entry.Set("ms_repair", r.ms_repair);
    entry.Set("ms_answers", r.ms_answers);
    entry.Set("ms_to_full_qps", r.ms_to_full_qps);
    entry.Set("reattaches", r.reattaches);
    entry.Set("answers_bit_identical", r.answers_bit_identical);
    best.Append(std::move(entry));
    if (r.mode == "cold") ms_cold = r.ms_to_full_qps;
    if (r.mode == "warm") ms_warm = r.ms_to_full_qps;
  }
  for (const RestartRecord& r : restart.trials) {
    all_identical = all_identical && r.answers_bit_identical;
  }
  root.Set("restart", std::move(best));
  if (!restart.ran) root.Set("error", restart.error);
  root.Set("restored_answers_bit_identical", all_identical);
  root.Set("warm_faster_than_cold",
           restart.ran && ms_warm > 0 && ms_warm < ms_cold);
  // Warm must also actually take the reattach path — a warm restart that
  // silently re-sent every graph would still be "fast enough" locally
  // but defeats the tier design.
  bool warm_reattached = false;
  for (const RestartRecord& r : restart.best) {
    if (r.mode == "warm" && r.reattaches == kObjects) warm_reattached = true;
  }
  root.Set("warm_used_reattach", warm_reattached);
  JsonValue io = JsonValue::MakeObject();
  io.Set("objects", segment_io.objects);
  io.Set("bytes", segment_io.bytes);
  io.Set("ms_append_seal", segment_io.ms_append_seal);
  io.Set("ms_reopen", segment_io.ms_reopen);
  io.Set("ms_read_all", segment_io.ms_read_all);
  io.Set("ms_fsck", segment_io.ms_fsck);
  io.Set("round_trip_identical", segment_io.round_trip_identical);
  root.Set("segment_io", std::move(io));
  bench::WriteBenchJson(path, std::move(root));
}

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path =
      dcs::bench::ConsumeOutFlag(&argc, argv, "BENCH_store.json");
  const dcs::Workload workload = dcs::MakeWorkload();
  const auto restart = dcs::SectionRestart(workload);
  if (!restart.ran) {
    std::fprintf(stderr, "restart section failed: %s\n",
                 restart.error.c_str());
  }
  const auto segment_io = dcs::SectionSegmentIo(workload);
  dcs::WriteJson(out_path, restart, segment_io);
  return restart.ran ? 0 : 1;
}
