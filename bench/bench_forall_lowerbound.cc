// Experiment T1.2 — Theorem 1.2 (for-all cut sketch lower bound).
//
// Paper claim: any (1±ε) for-all cut sketch for β-balanced n-node graphs
// needs Ω(nβ/ε²) bits. The Section 4 construction encodes h = Θ(nβ)
// Gap-Hamming strings of 1/ε² bits each; Bob resolves the ±c/ε gap of any
// one of them by selecting the best half-size subset Q ⊂ V_p (Lemma 4.4)
// from a for-all sketch, and fails once the sketch error is large.
//
// Tables produced:
//   A: encoded bits vs the nβ/ε² formula across (1/ε², β, ℓ), with
//      exact-oracle decision accuracy (greedy subset selection).
//   B: decision accuracy vs oracle relative error (threshold crossover).
//   C: subset-selection ablation — exhaustive enumeration (the paper's
//      Bob) vs the greedy marginal ranking, with agreement rate and time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "lowerbound/forall_encoding.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double TrialAccuracy(const ForAllLowerBoundParams& params, int trials,
                     double relative_error, uint64_t seed,
                     ForAllDecoder::SubsetSelection mode) {
  Rng rng(seed);
  Rng noise_rng(seed + 1);
  auto factory = [&noise_rng,
                  relative_error](const DirectedGraph& g) -> CutOracle {
    if (relative_error <= 0) return ExactCutOracle(g);
    return NoisyCutOracle(g, relative_error, noise_rng);
  };
  return RunForAllTrials(params, trials, rng, factory, mode).accuracy();
}

void TableA() {
  PrintBanner("T1.2/A",
              "Section 4 construction: encoded bits vs n*beta/eps^2");
  PrintRow({"1/eps^2", "beta", "layers", "n", "bits", "n*b/eps^2",
            "bits/formula", "acc(exact)"});
  PrintRule(8);
  struct Config {
    int inv_eps_sq;
    int beta;
    int layers;
  };
  const std::vector<Config> configs = {{4, 1, 2},  {4, 2, 2},  {16, 1, 2},
                                       {16, 2, 2}, {16, 1, 3}, {36, 1, 2},
                                       {36, 2, 2}, {64, 1, 2}};
  for (const Config& config : configs) {
    ForAllLowerBoundParams params;
    params.inv_epsilon_sq = config.inv_eps_sq;
    params.beta = config.beta;
    params.num_layers = config.layers;
    const double formula = static_cast<double>(params.num_vertices()) *
                           params.beta * params.inv_epsilon_sq;
    const double accuracy = TrialAccuracy(
        params, 40, 0, 11 + config.inv_eps_sq + config.beta,
        ForAllDecoder::SubsetSelection::kGreedy);
    PrintRow({I(config.inv_eps_sq), I(config.beta), I(config.layers),
              I(params.num_vertices()), I(params.total_bits()), E(formula),
              F(params.total_bits() / formula, 3), F(accuracy, 3)});
  }
  std::printf(
      "(paper: Theta(n*beta/eps^2) bits; ratio = (l-1)/l from the layered\n"
      " construction. Accuracy is Bob's far/close decision rate; the paper\n"
      " needs >= 2/3)\n");
}

void TableB() {
  PrintBanner("T1.2/B", "Decision accuracy vs oracle error");
  const std::vector<double> errors = {0.0, 0.01, 0.05, 0.15, 0.4, 0.8};
  std::vector<std::string> header = {"1/eps^2"};
  for (double err : errors) header.push_back("d=" + E(err));
  PrintRow(header, 11);
  PrintRule(header.size(), 11);
  for (int inv_eps_sq : {16, 36, 64}) {
    ForAllLowerBoundParams params;
    params.inv_epsilon_sq = inv_eps_sq;
    params.beta = 1;
    params.num_layers = 2;
    std::vector<std::string> row = {I(inv_eps_sq)};
    for (double err : errors) {
      row.push_back(F(TrialAccuracy(params, 40, err, 31 + inv_eps_sq,
                                    ForAllDecoder::SubsetSelection::kGreedy),
                      2));
    }
    PrintRow(row, 11);
  }
  std::printf(
      "(decision quality degrades to a coin flip as the per-query error\n"
      " grows past the c2*eps threshold of Lemma 4.2)\n");
}

void TableC() {
  PrintBanner("T1.2/C",
              "Lemma 4.4 ablation: exhaustive enumeration vs greedy argmax");
  PrintRow({"k", "subsets", "acc(enum)", "acc(greedy)", "t_enum(ms)",
            "t_greedy(ms)"});
  PrintRule(6);
  for (int inv_eps_sq : {4, 8, 12}) {
    ForAllLowerBoundParams params;
    params.inv_epsilon_sq = inv_eps_sq;
    params.beta = 1;
    params.num_layers = 2;
    const int k = params.layer_size();
    double subsets = 1;
    for (int i = 1; i <= k / 2; ++i) {
      subsets *= static_cast<double>(k - i + 1) / i;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const double acc_enum =
        TrialAccuracy(params, 25, 0, 71 + inv_eps_sq,
                      ForAllDecoder::SubsetSelection::kEnumerate);
    const auto t1 = std::chrono::steady_clock::now();
    const double acc_greedy =
        TrialAccuracy(params, 25, 0, 71 + inv_eps_sq,
                      ForAllDecoder::SubsetSelection::kGreedy);
    const auto t2 = std::chrono::steady_clock::now();
    const double ms_enum =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_greedy =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    PrintRow({I(k), E(subsets), F(acc_enum, 3), F(acc_greedy, 3),
              F(ms_enum, 1), F(ms_greedy, 1)});
  }
  std::printf(
      "(the greedy marginal ranking computes the same argmax for modular\n"
      " estimators with k+1 queries instead of C(k,k/2) — same accuracy,\n"
      " exponentially faster)\n");
}

void TableD(int threads) {
  PrintBanner("T1.2/D",
              "Seed-deterministic trial parallelism (RunForAllTrials)");
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 2;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& rng) -> CutOracle {
    return NoisyCutOracle(g, 0.01, rng);
  };
  constexpr int kTrials = 40;
  constexpr uint64_t kSeed = 2024;
  const auto mode = ForAllDecoder::SubsetSelection::kGreedy;
  const auto t0 = std::chrono::steady_clock::now();
  const ForAllTrialResult serial =
      RunForAllTrials(params, kTrials, kSeed, factory, mode, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const ForAllTrialResult parallel =
      RunForAllTrials(params, kTrials, kSeed, factory, mode, threads);
  const auto t2 = std::chrono::steady_clock::now();
  const double ms_serial =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double ms_parallel =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  PrintRow({"threads", "correct", "trials", "time(ms)", "speedup"});
  PrintRule(5);
  PrintRow({I(1), I(serial.correct), I(serial.trials), F(ms_serial, 1),
            F(1.0, 2)});
  PrintRow({I(threads), I(parallel.correct), I(parallel.trials),
            F(ms_parallel, 1), F(ms_serial / ms_parallel, 2)});
  std::printf("bit-identical to serial: %s\n",
              serial.correct == parallel.correct &&
                      serial.trials == parallel.trials
                  ? "yes"
                  : "NO (BUG)");
}

void BM_ForAllEncode(benchmark::State& state) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = static_cast<int>(state.range(0));
  params.beta = 2;
  params.num_layers = 2;
  Rng rng(1);
  std::vector<std::vector<uint8_t>> strings;
  for (int64_t i = 0; i < params.total_strings(); ++i) {
    strings.push_back(rng.RandomBinaryStringWithWeight(
        params.inv_epsilon_sq, params.inv_epsilon_sq / 2));
  }
  const ForAllEncoder encoder(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(strings));
  }
  state.counters["bits"] = static_cast<double>(params.total_bits());
}
BENCHMARK(BM_ForAllEncode)->Arg(4)->Arg(16)->Arg(36);

void BM_ForAllGreedyDecision(benchmark::State& state) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = static_cast<int>(state.range(0));
  params.beta = 1;
  params.num_layers = 2;
  Rng rng(2);
  GapHammingParams gh;
  gh.num_strings = static_cast<int>(params.total_strings());
  gh.string_length = params.inv_epsilon_sq;
  const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
  const DirectedGraph graph = ForAllEncoder(params).Encode(instance.s);
  const ForAllDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decoder.DecideFar(instance.index, instance.t, oracle,
                          ForAllDecoder::SubsetSelection::kGreedy));
  }
}
BENCHMARK(BM_ForAllGreedyDecision)->Arg(16)->Arg(36);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_forall_lowerbound.json");
  const int threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  dcs::TableD(threads);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
