// Experiment MC — substrate validation: the exact min-cut solvers agree
// with each other across workloads, with their cost profiles on record.
//
// Tables produced:
//   A: Stoer–Wagner vs Karger–Stein vs Gomory–Hu vs the Dinic sweep on
//      the same instances: values (must agree) and wall times.
//   B: directed global min cut vs exhaustive enumeration at small n.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "graph/generators.h"
#include "mincut/dinic.h"
#include "mincut/directed_mincut.h"
#include "mincut/gomory_hu.h"
#include "mincut/karger.h"
#include "mincut/stoer_wagner.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double MillisSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void TableA() {
  PrintBanner("MC/A", "Exact solvers agree (values) — costs on record");
  PrintRow({"graph", "SW value", "KS value", "GH value", "t_SW ms",
            "t_KS ms", "t_GH ms"});
  PrintRule(7);
  struct Workload {
    const char* name;
    UndirectedGraph graph;
  };
  Rng gen_rng(1);
  std::vector<Workload> workloads;
  workloads.push_back({"dumbbell 2x24", DumbbellGraph(24, 3)});
  workloads.push_back({"grid 8x12", GridGraph(8, 12)});
  workloads.push_back(
      {"G(64, .15)",
       RandomUndirectedGraph(64, 0.15, 0.5, 2.0, true, gen_rng)});
  workloads.push_back(
      {"pref-attach 96", PreferentialAttachmentGraph(96, 4, gen_rng)});
  for (const Workload& workload : workloads) {
    auto t0 = std::chrono::steady_clock::now();
    const double sw = StoerWagnerMinCut(workload.graph).value;
    const double t_sw = MillisSince(t0);
    t0 = std::chrono::steady_clock::now();
    Rng ks_rng(7);
    const double ks = KargerSteinMinCut(workload.graph, ks_rng, 12).value;
    const double t_ks = MillisSince(t0);
    t0 = std::chrono::steady_clock::now();
    const double gh = GomoryHuTree(workload.graph).GlobalMinCutValue();
    const double t_gh = MillisSince(t0);
    PrintRow({workload.name, F(sw, 3), F(ks, 3), F(gh, 3), F(t_sw, 1),
              F(t_ks, 1), F(t_gh, 1)});
  }
  std::printf("(three independent algorithms, one answer per row)\n");
}

void TableB() {
  PrintBanner("MC/B",
              "Directed global min cut vs exhaustive enumeration (n<=12)");
  PrintRow({"beta", "seed", "Dinic sweep", "exhaustive"});
  PrintRule(4);
  for (double beta : {1.0, 3.0}) {
    for (uint64_t seed = 0; seed < 2; ++seed) {
      Rng rng(seed + static_cast<uint64_t>(beta * 10));
      const DirectedGraph g = RandomBalancedDigraph(12, 0.3, beta, rng);
      const double fast = DirectedGlobalMinCut(g).value;
      double brute = 1e18;
      for (uint64_t mask = 1; mask + 1 < (1ULL << 12); ++mask) {
        VertexSet side(12);
        for (int v = 0; v < 12; ++v) {
          side[static_cast<size_t>(v)] =
              static_cast<uint8_t>((mask >> v) & 1);
        }
        brute = std::min(brute, g.CutWeight(side));
      }
      PrintRow({F(beta, 0), I(static_cast<int64_t>(seed)), F(fast, 6),
                F(brute, 6)});
    }
  }
}

void BM_StoerWagner(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const UndirectedGraph g =
      RandomUndirectedGraph(n, 0.2, 1.0, 2.0, true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StoerWagnerMinCut(g));
  }
}
BENCHMARK(BM_StoerWagner)->Arg(32)->Arg(64)->Arg(128);

void BM_GomoryHuBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const UndirectedGraph g =
      RandomUndirectedGraph(n, 0.2, 1.0, 2.0, true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GomoryHuTree(g));
  }
}
BENCHMARK(BM_GomoryHuBuild)->Arg(32)->Arg(64);

void BM_DirectedGlobalMinCut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.2, 2.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectedGlobalMinCut(g));
  }
}
BENCHMARK(BM_DirectedGlobalMinCut)->Arg(24)->Arg(48);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_mincut_algorithms.json");
  dcs::TableA();
  dcs::TableB();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
