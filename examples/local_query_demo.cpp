// Scenario: the graph is hidden behind a degree/neighbor/adjacency oracle
// (think: a huge social graph you can only probe through an API), and you
// want a (1±ε) estimate of its global min cut while paying per query.
// Runs the VERIFY-GUESS estimator in both variants — the original [BGMP21]
// search and the paper's Theorem 5.7 modification — and compares query
// bills, including on the paper's own hard instances G_{x,y}.
//
//   $ ./build/examples/local_query_demo

#include <cstdio>

#include "graph/generators.h"
#include "localquery/mincut_estimator.h"
#include "lowerbound/twosum_graph.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace {

void Report(const char* name, const dcs::UndirectedGraph& graph,
            double epsilon, uint64_t seed) {
  const double exact = dcs::StoerWagnerMinCut(graph).value;
  std::printf("\n%s (n=%d, m=%lld, true min cut %.0f, eps=%.2f)\n", name,
              graph.num_vertices(),
              static_cast<long long>(graph.num_edges()), exact, epsilon);
  for (const auto mode : {dcs::SearchMode::kOriginalEpsilonSearch,
                          dcs::SearchMode::kModifiedConstantSearch}) {
    dcs::Rng rng(seed);
    const dcs::LocalQueryMinCutResult result =
        dcs::EstimateMinCutLocalQueries(graph, epsilon, mode, rng);
    std::printf(
        "  %-22s estimate %8.1f | queries: %7lld deg, %8lld nbr, "
        "%4lld adj | comm %lld bits\n",
        mode == dcs::SearchMode::kOriginalEpsilonSearch
            ? "original (eps search)"
            : "modified (Thm 5.7)",
        result.estimate, static_cast<long long>(result.counts.degree),
        static_cast<long long>(result.counts.neighbor),
        static_cast<long long>(result.counts.adjacency),
        static_cast<long long>(result.communication_bits));
  }
}

}  // namespace

int main() {
  // A planted-cut instance: two communities with 8 cross edges.
  Report("dumbbell", dcs::DumbbellGraph(24, 8), 0.25, 11);

  // A high-multiplicity regular multigraph — the regime where the modified
  // search's 1/eps^2 beats the original's 1/eps^4.
  dcs::Rng gen_rng(1);
  Report("4096-regular multigraph",
         dcs::UnionOfRandomMatchings(64, 4096, gen_rng), 0.3, 13);

  // The paper's lower-bound instance G_{x,y} with min cut 2*INT = 6.
  std::vector<uint8_t> x(40 * 40, 0), y(40 * 40, 0);
  dcs::Rng pos_rng(2);
  for (int pos : pos_rng.RandomSubset(1600, 3)) {
    x[static_cast<size_t>(pos)] = 1;
    y[static_cast<size_t>(pos)] = 1;
  }
  Report("G_{x,y} hard instance", dcs::BuildTwoSumGraph(x, y), 0.25, 17);

  std::printf(
      "\n(Theorem 1.3: any algorithm needs Omega(min{m, m/(eps^2 k)})\n"
      " queries on graphs like the last one; the modified estimator gets\n"
      " within polylog factors of that)\n");
  return 0;
}
