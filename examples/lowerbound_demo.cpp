// Demo of the Section 3 machinery with a human-readable payload: an ASCII
// message is encoded into the edge weights of a β-balanced digraph, then
// read back one bit at a time using only cut queries — exactly the
// communication game behind Theorem 1.1. Corrupting the cut oracle past the
// ε threshold garbles the message, which is the lower bound in action.
//
//   $ ./build/examples/lowerbound_demo

#include <cstdio>
#include <string>
#include <vector>

#include "lowerbound/foreach_encoding.h"
#include "util/random.h"

namespace {

// Packs ASCII into ±1 bits (MSB first).
std::vector<int8_t> MessageToSigns(const std::string& message,
                                   int64_t capacity) {
  std::vector<int8_t> signs;
  for (char c : message) {
    for (int bit = 7; bit >= 0; --bit) {
      signs.push_back(((c >> bit) & 1) ? 1 : -1);
    }
  }
  // Pad with +1 up to the construction's capacity.
  while (static_cast<int64_t>(signs.size()) < capacity) signs.push_back(1);
  return signs;
}

std::string SignsToMessage(const std::vector<int8_t>& signs, size_t chars) {
  std::string message;
  for (size_t c = 0; c < chars; ++c) {
    char value = 0;
    for (int bit = 0; bit < 8; ++bit) {
      value = static_cast<char>((value << 1) |
                                (signs[c * 8 + static_cast<size_t>(bit)] > 0
                                     ? 1
                                     : 0));
    }
    message.push_back(value);
  }
  return message;
}

}  // namespace

int main() {
  const std::string message = "PODS 2024: tight bounds!";

  dcs::ForEachLowerBoundParams params;
  params.inv_epsilon = 8;  // epsilon = 1/8
  params.sqrt_beta = 2;    // beta = 4
  params.num_layers = 3;
  std::printf("construction: n=%d vertices, capacity %lld bits, eps=%.3f, "
              "beta=%.0f\n",
              params.num_vertices(),
              static_cast<long long>(params.total_bits()),
              1.0 / params.inv_epsilon, params.beta());

  const std::vector<int8_t> signs =
      MessageToSigns(message, params.total_bits());
  const dcs::ForEachEncoder encoder(params);
  const auto encoding = encoder.Encode(signs);
  std::printf("encoded %zu chars into a digraph with %lld edges "
              "(%lld clusters failed the Chernoff clip)\n",
              message.size(),
              static_cast<long long>(encoding.graph.num_edges()),
              static_cast<long long>(encoding.failed_clusters));

  const dcs::ForEachDecoder decoder(params);

  // 1) Decode through an exact cut oracle: every bit comes back.
  const dcs::CutOracle exact = dcs::ExactCutOracle(encoding.graph);
  std::vector<int8_t> decoded(signs.size());
  for (size_t q = 0; q < static_cast<size_t>(message.size()) * 8; ++q) {
    decoded[q] = decoder.DecodeBit(static_cast<int64_t>(q), exact);
  }
  std::printf("\nexact cut oracle      : \"%s\"\n",
              SignsToMessage(decoded, message.size()).c_str());

  // 2) A (1 +/- 0.005) oracle — below the c2*eps/ln(1/eps) threshold.
  dcs::Rng noise_rng(1);
  const dcs::CutOracle mild =
      dcs::MaximalNoiseCutOracle(encoding.graph, 0.005, noise_rng);
  for (size_t q = 0; q < static_cast<size_t>(message.size()) * 8; ++q) {
    decoded[q] = decoder.DecodeBit(static_cast<int64_t>(q), mild);
  }
  std::printf("0.5%% noisy cut oracle : \"%s\"\n",
              SignsToMessage(decoded, message.size()).c_str());

  // 3) A (1 +/- 0.25) oracle — far past the threshold: garbage.
  dcs::Rng heavy_rng(2);
  const dcs::CutOracle heavy =
      dcs::MaximalNoiseCutOracle(encoding.graph, 0.25, heavy_rng);
  for (size_t q = 0; q < static_cast<size_t>(message.size()) * 8; ++q) {
    decoded[q] = decoder.DecodeBit(static_cast<int64_t>(q), heavy);
  }
  std::string garbled = SignsToMessage(decoded, message.size());
  for (char& c : garbled) {
    if (c < 32 || c > 126) c = '?';
  }
  std::printf("25%% noisy cut oracle  : \"%s\"\n", garbled.c_str());

  std::printf(
      "\n(any data structure that answers cut queries to (1 +/- eps) can\n"
      " carry the message, so it must be at least that many bits — the\n"
      " Omega(n*sqrt(beta)/eps) of Theorem 1.1)\n");
  return 0;
}
