// Scenario: a graph's edges live on several servers (say, per-datacenter
// traffic logs), and a coordinator wants the global minimum cut without
// shipping all edges. Each server uploads a constant-accuracy for-all
// sparsifier plus an accurate for-each sketch; the coordinator enumerates
// candidate cuts from the former and scores them with the latter — the
// exact pipeline that motivates the paper's lower bounds.
//
//   $ ./build/examples/distributed_mincut

#include <cstdio>

#include "distributed/distributed_mincut.h"
#include "graph/generators.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

int main() {
  // Two dense communities joined by 5 cross links: min cut = 5.
  const dcs::UndirectedGraph graph = dcs::DumbbellGraph(60, 5);
  const dcs::GlobalMinCut truth = dcs::StoerWagnerMinCut(graph);
  std::printf("hidden graph: n=%d, m=%lld, true min cut %.1f\n",
              graph.num_vertices(),
              static_cast<long long>(graph.num_edges()), truth.value);

  dcs::Rng rng(2024);
  const int num_servers = 6;
  dcs::DistributedMinCutOptions options;
  options.epsilon = 0.1;         // target accuracy of the final answer
  options.coarse_epsilon = 0.2;  // accuracy of the candidate-finding pass
  const std::vector<dcs::UndirectedGraph> servers =
      dcs::PartitionEdges(graph, num_servers, rng);
  std::printf("edges partitioned across %d servers (%lld..%lld each)\n",
              num_servers,
              static_cast<long long>(servers.front().num_edges()),
              static_cast<long long>(servers.back().num_edges()));

  const dcs::DistributedMinCutPipeline pipeline(servers, options, rng);
  const auto result = pipeline.Run(rng);

  std::printf("\ncoordinator result:\n");
  std::printf("  candidates scored : %d\n", result.candidates_considered);
  std::printf("  estimated min cut : %.2f (true %.1f)\n", result.estimate,
              truth.value);
  std::printf("  cut side size     : %lld of %d vertices\n",
              static_cast<long long>(dcs::SetSize(result.best_side)),
              graph.num_vertices());
  std::printf("\ncommunication:\n");
  std::printf("  for-all sketches  : %lld bits\n",
              static_cast<long long>(result.forall_bits));
  std::printf("  for-each sketches : %lld bits\n",
              static_cast<long long>(result.foreach_bits));
  std::printf("  naive (ship all)  : %lld bits\n",
              static_cast<long long>(pipeline.NaiveShipAllBits()));
  std::printf(
      "\n(the for-each pass is what makes the accuracy cheap: its size\n"
      " grows like 1/epsilon instead of the 1/epsilon^2 a for-all sketch\n"
      " would need — and Theorem 1.1 proves that is the best possible)\n");
  return 0;
}
