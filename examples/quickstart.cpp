// Quickstart: build a β-balanced directed graph, sketch it three ways, and
// compare cut estimates and sketch sizes against the exact values.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "graph/balance.h"
#include "graph/generators.h"
#include "sketch/directed_sketches.h"
#include "sketch/exact_sketch.h"
#include "util/random.h"

int main() {
  // A 200-node digraph in which every cut is at most 4x heavier in one
  // direction than the other (Definition 2.1 of the paper).
  const int n = 200;
  const double beta = 4.0;
  dcs::Rng rng(42);
  const dcs::DirectedGraph graph =
      dcs::RandomBalancedDigraph(n, /*edge_probability=*/0.3, beta, rng);
  std::printf("graph: n=%d, m=%lld, total weight %.1f\n",
              graph.num_vertices(),
              static_cast<long long>(graph.num_edges()),
              graph.TotalWeight());
  const auto certificate = dcs::PerEdgeBalanceCertificate(graph);
  std::printf("per-edge balance certificate: beta <= %.2f\n",
              certificate.value_or(-1));

  // Three sketches at epsilon = 0.15: a for-each sketch (cheap, each fixed
  // cut accurate with constant probability), a for-all sketch (every cut
  // accurate simultaneously), and the exact baseline.
  const double epsilon = 0.15;
  dcs::Rng sketch_rng(7);
  const dcs::DirectedForEachSketch foreach_sketch(graph, epsilon, beta,
                                                  sketch_rng);
  const dcs::DirectedForAllSketch forall_sketch(graph, epsilon, beta,
                                                sketch_rng);
  const dcs::ExactDirectedSketch exact_sketch{dcs::DirectedGraph(graph)};

  std::printf("\nsketch sizes (bits):\n");
  std::printf("  for-each : %10lld\n",
              static_cast<long long>(foreach_sketch.SizeInBits()));
  std::printf("  for-all  : %10lld\n",
              static_cast<long long>(forall_sketch.SizeInBits()));
  std::printf("  exact    : %10lld\n",
              static_cast<long long>(exact_sketch.SizeInBits()));

  // Query a few directed cuts w(S, V \ S).
  std::printf("\ncut queries:\n");
  std::printf("%-28s %10s %10s %10s\n", "cut", "exact", "for-each",
              "for-all");
  dcs::Rng cut_rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    dcs::VertexSet side(static_cast<size_t>(n));
    for (auto& bit : side) bit = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!dcs::IsProperCutSide(side)) continue;
    char label[64];
    std::snprintf(label, sizeof(label), "random cut #%d (|S|=%lld)", trial,
                  static_cast<long long>(dcs::SetSize(side)));
    std::printf("%-28s %10.1f %10.1f %10.1f\n", label,
                graph.CutWeight(side), foreach_sketch.EstimateCut(side),
                forall_sketch.EstimateCut(side));
  }
  std::printf("\n(the paper proves these sketch sizes are optimal up to\n"
              " logarithmic factors: Theorems 1.1 and 1.2)\n");
  return 0;
}
