// A guided tour of the paper's results, each demonstrated live:
//   Theorem 1.1 — bits hidden in a balanced graph, read via cut queries
//   Theorem 1.2 — Gap-Hamming decisions from a for-all sketch
//   Theorem 1.3 / Lemma 5.5 — the G_{x,y} hard instance and its min cut
//   Theorem 5.7 — the modified VERIFY-GUESS search paying fewer queries
//
//   $ ./build/examples/paper_tour

#include <cstdio>

#include "graph/balance.h"
#include "graph/generators.h"
#include "localquery/mincut_estimator.h"
#include "lowerbound/foreach_encoding.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/twosum_graph.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace {

void Banner(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

void Theorem11() {
  Banner("Theorem 1.1: for-each cut sketches need ~ n*sqrt(beta)/eps bits");
  dcs::ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  dcs::Rng rng(1);
  const auto s = rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = dcs::ForEachEncoder(params).Encode(s);
  const dcs::ForEachDecoder decoder(params);
  const auto oracle = dcs::ExactCutOracle(encoding.graph);
  int correct = 0;
  for (int64_t q = 0; q < params.total_bits(); ++q) {
    if (decoder.DecodeBit(q, oracle) == s[static_cast<size_t>(q)]) {
      ++correct;
    }
  }
  std::printf("  %lld random bits stored in a %d-vertex beta=%.0f-balanced "
              "graph;\n  recovered %d/%lld via 4 cut queries each.\n",
              static_cast<long long>(params.total_bits()),
              params.num_vertices(), params.beta(), correct,
              static_cast<long long>(params.total_bits()));
  std::printf("  => any (1 +/- eps) sketch of this graph carries >= %lld "
              "bits.\n",
              static_cast<long long>(params.total_bits()));
}

void Theorem12() {
  Banner("Theorem 1.2: for-all cut sketches need ~ n*beta/eps^2 bits");
  dcs::ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  dcs::Rng rng(2);
  const dcs::ForAllTrialResult result = dcs::RunForAllTrials(
      params, 30, rng,
      [](const dcs::DirectedGraph& g) { return dcs::ExactCutOracle(g); },
      dcs::ForAllDecoder::SubsetSelection::kGreedy);
  std::printf("  %lld Gap-Hamming bits encoded into {1,2} edge weights;\n"
              "  Bob's best-half-subset rule decides the +/- c/eps gap "
              "correctly in %.0f%% of trials\n  (paper needs 2/3).\n",
              static_cast<long long>(params.total_bits()),
              100 * result.accuracy());
}

void Theorem13() {
  Banner("Theorem 1.3: min-cut needs ~ min{m, m/(eps^2 k)} local queries");
  std::vector<uint8_t> x(30 * 30, 0), y(30 * 30, 0);
  dcs::Rng pos(3);
  for (int p : pos.RandomSubset(900, 4)) {
    x[static_cast<size_t>(p)] = 1;
    y[static_cast<size_t>(p)] = 1;
  }
  const dcs::UndirectedGraph g = dcs::BuildTwoSumGraph(x, y);
  std::printf("  G_{x,y}: n=%d, m=%lld, INT(x,y)=4 -> min cut %.0f "
              "(Lemma 5.5: 2*INT).\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              dcs::StoerWagnerMinCut(g).value);
  dcs::Rng rng(4);
  const auto result = dcs::EstimateMinCutLocalQueries(
      g, 0.25, dcs::SearchMode::kModifiedConstantSearch, rng);
  std::printf("  estimator: %.1f from %lld queries = %lld communication "
              "bits (2/query).\n",
              result.estimate,
              static_cast<long long>(result.counts.total()),
              static_cast<long long>(result.communication_bits));
}

void Theorem57() {
  Banner("Theorem 5.7: constant-accuracy search turns 1/eps^4 into 1/eps^2");
  dcs::Rng gen(5);
  const dcs::UndirectedGraph g = dcs::UnionOfRandomMatchings(64, 8192, gen);
  for (const auto mode : {dcs::SearchMode::kOriginalEpsilonSearch,
                          dcs::SearchMode::kModifiedConstantSearch}) {
    dcs::Rng rng(6);
    const auto result = dcs::EstimateMinCutLocalQueries(g, 0.3, mode, rng);
    std::printf("  %-28s estimate %7.0f using %8lld queries\n",
                mode == dcs::SearchMode::kOriginalEpsilonSearch
                    ? "original (search at eps):"
                    : "modified (search at beta0):",
                result.estimate,
                static_cast<long long>(result.counts.total()));
  }
}

}  // namespace

int main() {
  std::printf("Tight Lower Bounds for Directed Cut Sparsification and "
              "Distributed Min-Cut\n(PODS 2024) — a tour of the results, "
              "run live.\n");
  Theorem11();
  Theorem12();
  Theorem13();
  Theorem57();
  std::printf("\nSee EXPERIMENTS.md for the full paper-vs-measured tables.\n");
  return 0;
}
