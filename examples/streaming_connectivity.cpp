// Scenario: a friendship graph arrives as a stream of follow/unfollow
// events spread across ingestion servers, and an analytics job needs to
// know, at any point, whether the network is still connected — without
// ever storing the edges. Each server keeps an AGM linear sketch
// ([AGM12], the PODS result the paper builds its motivation on); sketches
// merge by addition and support deletions natively.
//
//   $ ./build/examples/streaming_connectivity

#include <cstdio>

#include "stream/agm_sketch.h"
#include "util/random.h"

int main() {
  const int n = 48;
  const int servers = 3;
  const uint64_t shared_seed = 20240705;  // sketches must agree to merge

  std::printf("=== %d users, %d ingestion servers, AGM sketches ===\n\n", n,
              servers);
  std::vector<dcs::AgmConnectivitySketch> sketch;
  for (int s = 0; s < servers; ++s) {
    sketch.emplace_back(n, /*rounds=*/0, shared_seed);
  }
  std::printf("per-server sketch: %lld bits (%lld linear measurements)\n",
              static_cast<long long>(sketch[0].SizeInBits()),
              static_cast<long long>(sketch[0].MeasurementCount()));

  // Phase 1: follows arrive round-robin — a ring plus random chords.
  dcs::Rng rng(1);
  int event = 0;
  auto follow = [&](int u, int v) { sketch[event++ % servers].AddEdge(u, v); };
  auto unfollow = [&](int u, int v) {
    sketch[event++ % servers].RemoveEdge(u, v);
  };
  for (int v = 0; v < n; ++v) follow(v, (v + 1) % n);
  std::vector<std::pair<int, int>> chords;
  while (chords.size() < 20) {
    const int u = static_cast<int>(rng.UniformInt(n));
    const int v = static_cast<int>(rng.UniformInt(n));
    if (u == v) continue;
    chords.emplace_back(u, v);
    follow(u, v);
  }
  auto merged = [&]() {
    dcs::AgmConnectivitySketch total = sketch[0];
    for (int s = 1; s < servers; ++s) total.MergeFrom(sketch[s]);
    return total;
  };
  std::printf("after %d follow events: connected = %s\n", event,
              merged().IsConnected() ? "yes" : "no");

  // Phase 2: a wave of unfollows removes all the chords.
  for (const auto& [u, v] : chords) unfollow(u, v);
  std::printf("after removing every chord: connected = %s (ring survives)\n",
              merged().IsConnected() ? "yes" : "no");

  // Phase 3: the ring is cut in two places — the network splits.
  unfollow(0, 1);
  unfollow(24, 25);
  const dcs::AgmConnectivitySketch final_state = merged();
  std::printf("after cutting the ring twice: %d components\n",
              final_state.CountComponents());

  std::printf(
      "\n(no server ever stored an edge list: the sketches are linear, so\n"
      " deletions subtract cleanly and the coordinator merges by adding —\n"
      " the [AGM12] machinery the paper's introduction points to)\n");
  return 0;
}
