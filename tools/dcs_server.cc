// dcs_server — one cut-query worker process (DESIGN.md §14).
//
// Hosts sharded CutQueryService instances behind bounded per-shard queues
// and serves the checksummed RPC envelope over a unix/tcp socket. Spawned
// in fleets by the `dcs cluster` chaos soak and by tests; also usable
// standalone:
//
//   dcs_server --listen unix:/tmp/w0.sock --shards 2 --queue-capacity 64
//
// With --store-dir DIR the worker persists every registered graph to a
// disk-backed sketch store (DESIGN.md §15): a respawn on the same
// directory warm-loads all objects under their original ids (clients
// reattach instead of re-sending sketches), and the drain additionally
// dumps the hottest cache entries for the next incarnation.
//
// SIGTERM (and SIGINT) trigger a drain-then-stop shutdown: the listener
// closes, in-flight requests finish, queued jobs run to completion, the
// store segment is sealed, and only then does the process exit. SIGKILL —
// the chaos signal — gets no such courtesy, which is exactly what the
// soak is for.
//
// Exit codes: 0 clean shutdown, 1 serve/bind failure, 2 usage error.

#include <signal.h>

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/cluster.h"
#include "serve/transport.h"

namespace {

// Signal handlers may only touch the worker through an async-signal-safe
// call; ClusterWorker::RequestStop is a relaxed atomic store by contract.
dcs::ClusterWorker* g_worker = nullptr;

void HandleStopSignal(int) {
  if (g_worker != nullptr) g_worker->RequestStop();
}

int ParseIntFlag(const char* flag, const char* text, int min_value) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (*text == '\0' || *end != '\0' || errno == ERANGE || value < min_value ||
      value > INT_MAX) {
    std::fprintf(stderr, "dcs_server: %s: bad value '%s'\n", flag, text);
    std::exit(2);
  }
  return static_cast<int>(value);
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: dcs_server --listen <unix:PATH|tcp:HOST:PORT> "
               "[--shards N] [--queue-capacity N] [--io-timeout-ms N] "
               "[--accept-timeout-ms N] [--execution-delay-ms N] "
               "[--store-dir DIR] [--warm-cache N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_spec;
  dcs::ClusterWorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      PrintUsage();
      return 2;
    }
    const char* value = argv[++i];
    if (flag == "--listen") {
      listen_spec = value;
    } else if (flag == "--shards") {
      options.num_shards = ParseIntFlag("--shards", value, 1);
    } else if (flag == "--queue-capacity") {
      options.queue_capacity = ParseIntFlag("--queue-capacity", value, 1);
    } else if (flag == "--io-timeout-ms") {
      options.io_timeout_ms = ParseIntFlag("--io-timeout-ms", value, 1);
    } else if (flag == "--accept-timeout-ms") {
      options.accept_timeout_ms =
          ParseIntFlag("--accept-timeout-ms", value, 1);
    } else if (flag == "--execution-delay-ms") {
      options.execution_delay_ms =
          ParseIntFlag("--execution-delay-ms", value, 0);
    } else if (flag == "--store-dir") {
      options.store_dir = value;
    } else if (flag == "--warm-cache") {
      options.warm_cache_entries = ParseIntFlag("--warm-cache", value, 0);
    } else {
      std::fprintf(stderr, "dcs_server: unknown flag %s\n", flag.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (listen_spec.empty()) {
    PrintUsage();
    return 2;
  }
  auto endpoint = dcs::ParseEndpoint(listen_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "dcs_server: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  auto worker = dcs::ClusterWorker::Create(*endpoint, options);
  if (!worker.ok()) {
    std::fprintf(stderr, "dcs_server: %s\n",
                 worker.status().ToString().c_str());
    return 1;
  }
  g_worker = worker->get();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // A client that vanishes mid-write must surface as EPIPE from send(),
  // not kill the process (Send already passes MSG_NOSIGNAL; this covers
  // any future write path).
  ::signal(SIGPIPE, SIG_IGN);

  const dcs::Status served = (*worker)->Serve();
  g_worker = nullptr;
  if (!served.ok()) {
    std::fprintf(stderr, "dcs_server: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
