// dcs — command-line driver for the library.
//
// Subcommands:
//   generate   write a synthetic graph to a text file
//   stats      vertex/edge counts, balance certificate, connectivity
//   mincut     exact global minimum cut (directed or undirected)
//   sketch     build a cut sketch, report its size, spot-check accuracy
//   localquery estimate the min cut via degree/neighbor queries only
//   encode     store a text message in a balanced graph's edge weights and
//              read it back through cut queries (Theorem 1.1 demo)
//   trials     run seed-deterministic lower-bound decode trials, optionally
//              across threads (--threads N; results are identical for any N)
//   protocol   run a one-way sketch protocol (Alice serializes, Bob
//              decodes), optionally over a lossy channel (--chaos-* flags)
//   distributed run the distributed min-cut pipeline on a partitioned
//              graph, optionally over a lossy channel with graceful
//              degradation when servers are lost
//   serve      run batched cut queries through the CutQueryService and
//              report cold vs warm-cache round times plus cache counters,
//              verifying warm answers are bit-identical to the cold pass
//   stream     write a replayable binary edge-update stream (--make), or
//              replay one through the concurrent StreamIngestor with
//              epoch barriers and per-epoch connectivity/min-cut reports
//   cluster    spawn a fleet of dcs_server worker processes, drive
//              replicated query traffic with failover while SIGKILLing
//              workers at --kill-rate, and verify every completed answer
//              is bit-identical to a single-process oracle; with
//              --store-root DIR workers persist registrations and
//              respawns warm-load + reattach instead of re-registering
//   store      poke a disk-backed sketch store directory (DESIGN.md §15):
//              put/get directed graphs by object id, compact away
//              superseded record versions, or fsck every segment
//
// Chaos flags (protocol, distributed): passing any of --chaos-seed,
// --chaos-drop, --chaos-flip, --chaos-truncate, --chaos-duplicate,
// --chaos-reorder, --chaos-rounds routes every message through a
// ReliableLink over a seeded LossyChannel (DESIGN.md §9). The fault script
// is a pure function of --chaos-seed, so reruns are bit-identical.
//
// Examples:
//   dcs generate --type balanced --n 100 --beta 4 --seed 1 --out g.txt
//   dcs stats --in g.txt --directed
//   dcs mincut --in g.txt --directed
//   dcs sketch --in g.txt --kind foreach --epsilon 0.2 --beta 4
//   dcs sketch --in g.txt --backend cut_balance --epsilon 0.2 --beta 4
//   dcs serve --n 128 --backend importance --rounds 3 --batch 256
//   dcs generate --type dumbbell --n 40 --k 3 --out d.txt
//   dcs localquery --in d.txt --epsilon 0.25
//   dcs encode --message "hello cuts"
//   dcs trials --kind forall --trials 40 --threads 4 --mode enumerate
//   dcs protocol --kind foreach --probes 32 --chaos-seed 7 --chaos-drop 0.05
//   dcs distributed --in g.txt --servers 4 --chaos-seed 7 --chaos-drop 0.3
//   dcs serve --n 128 --rounds 4 --batch 512 --pool 64 --threads 4
//   dcs stream --make 1 --n 256 --updates 20000 --out updates.bin
//   dcs stream --in updates.bin --inserters 2 --shards 4 --k 2 --epochs 4
//   dcs cluster --workers 4 --replication 2 --kill-rate 0.2
//   dcs store --dir /tmp/store --op put --id 7 --in g.txt
//   dcs store --dir /tmp/store --op fsck

// Exit codes: 0 success, 1 runtime/data error (unreadable or corrupt
// input, failed write), 2 usage error (unknown command/flag, malformed
// numeric value). Errors go to stderr; the tool never aborts on bad input.
//
// Every subcommand accepts --metrics-json FILE (or --metrics-json=FILE):
// after the command runs, the process-wide metrics snapshot (cut queries,
// local queries, per-sketch-kind serialized bit sizes, ...) is written to
// FILE as deterministic JSON. See DESIGN.md §8.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "distributed/distributed_mincut.h"
#include "graph/balance.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "localquery/mincut_estimator.h"
#include "lowerbound/protocols.h"
#include "stream/agm_sketch.h"
#include "stream/binary_stream.h"
#include "stream/ingest.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/foreach_encoding.h"
#include "mincut/directed_mincut.h"
#include "mincut/stoer_wagner.h"
#include "serve/cut_query_service.h"
#include "serve/load_driver.h"
#include "sketch/backend_registry.h"
#include "sketch/directed_sketches.h"
#include "sketch/serialization.h"
#include "store/sketch_store.h"
#include "util/bitio.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

using FlagMap = std::map<std::string, std::string>;

FlagMap ParseFlags(int argc, char** argv, int start) {
  FlagMap flags;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    // Both spellings are accepted: `--key value` and `--key=value`.
    const size_t equals = key.find('=');
    if (equals != std::string::npos) {
      flags[key.substr(0, equals)] = key.substr(equals + 1);
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
      std::exit(2);
    }
    flags[key] = argv[++i];
  }
  return flags;
}

std::string GetFlag(const FlagMap& flags, const std::string& key,
                    const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Numeric flag parsing via strtod/strtol with full-consumption and range
// checks: a malformed or out-of-range value (`--eps=1e999` overflows to
// inf with errno == ERANGE) is a usage error (exit 2), never an uncaught
// exception, a silently truncated parse, or a non-finite value leaking
// into the math downstream.
double GetDouble(const FlagMap& flags, const std::string& key,
                 double fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || end != it->second.c_str() + it->second.size()) {
    std::fprintf(stderr, "flag --%s: '%s' is not a number\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    std::fprintf(stderr, "flag --%s: '%s' is out of range\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return value;
}

int GetInt(const FlagMap& flags, const std::string& key, int fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (it->second.empty() || end != it->second.c_str() + it->second.size()) {
    std::fprintf(stderr, "flag --%s: '%s' is not an integer\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) {
    std::fprintf(stderr, "flag --%s: '%s' is out of range\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int>(value);
}

bool HasFlag(const FlagMap& flags, const std::string& key) {
  return flags.count(key) > 0;
}

int CmdGenerate(const FlagMap& flags) {
  const std::string type = GetFlag(flags, "type", "balanced");
  const std::string out = GetFlag(flags, "out", "graph.txt");
  const int n = GetInt(flags, "n", 64);
  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  dcs::Status status;
  if (type == "balanced") {
    const double beta = GetDouble(flags, "beta", 2.0);
    const double p = GetDouble(flags, "p", 0.3);
    status = dcs::SaveDirectedGraph(
        dcs::RandomBalancedDigraph(n, p, beta, rng), out);
  } else if (type == "eulerian") {
    status = dcs::SaveDirectedGraph(
        dcs::RandomEulerianDigraph(n, GetInt(flags, "cycles", n), 8, rng),
        out);
  } else if (type == "random") {
    const double p = GetDouble(flags, "p", 0.2);
    status = dcs::SaveUndirectedGraph(
        dcs::RandomUndirectedGraph(n, p, 1.0, 1.0, true, rng), out);
  } else if (type == "dumbbell") {
    status = dcs::SaveUndirectedGraph(
        dcs::DumbbellGraph(n / 2, GetInt(flags, "k", 2)), out);
  } else if (type == "multigraph") {
    status = dcs::SaveUndirectedGraph(
        dcs::UnionOfRandomMatchings(n, GetInt(flags, "k", 8), rng), out);
  } else {
    std::fprintf(stderr,
                 "unknown --type (balanced|eulerian|random|dumbbell|"
                 "multigraph)\n");
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdStats(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  if (HasFlag(flags, "directed")) {
    const auto graph = dcs::LoadDirectedGraph(in);
    if (!graph.ok()) {
      std::fprintf(stderr, "cannot read directed graph from %s: %s\n",
                   in.c_str(), graph.status().ToString().c_str());
      return 1;
    }
    std::printf("directed graph: n=%d m=%lld total weight %.3f\n",
                graph->num_vertices(),
                static_cast<long long>(graph->num_edges()),
                graph->TotalWeight());
    std::printf("strongly connected: %s\n",
                dcs::IsStronglyConnected(*graph) ? "yes" : "no");
    const auto certificate = dcs::PerEdgeBalanceCertificate(*graph);
    if (certificate) {
      std::printf("per-edge balance certificate: beta <= %.4f\n",
                  *certificate);
    } else {
      std::printf("per-edge balance certificate: none (some edge has no "
                  "reverse weight)\n");
    }
    return 0;
  }
  const auto graph = dcs::LoadUndirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot read undirected graph from %s: %s\n",
                 in.c_str(), graph.status().ToString().c_str());
    return 1;
  }
  std::printf("undirected graph: n=%d m=%lld total weight %.3f\n",
              graph->num_vertices(),
              static_cast<long long>(graph->num_edges()),
              graph->TotalWeight());
  std::printf("connected: %s (%d components)\n",
              dcs::IsConnected(*graph) ? "yes" : "no",
              dcs::CountComponents(*graph));
  return 0;
}

int CmdMinCut(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  if (HasFlag(flags, "directed")) {
    const auto graph = dcs::LoadDirectedGraph(in);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", in.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    const dcs::GlobalMinCut cut = dcs::DirectedGlobalMinCut(*graph);
    std::printf("directed global min cut: %.6f (|S| = %lld)\n", cut.value,
                static_cast<long long>(dcs::SetSize(cut.side)));
    return 0;
  }
  const auto graph = dcs::LoadUndirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  const dcs::GlobalMinCut cut = dcs::StoerWagnerMinCut(*graph);
  std::printf("global min cut: %.6f (|S| = %lld)\n", cut.value,
              static_cast<long long>(dcs::SetSize(cut.side)));
  return 0;
}

int CmdSketch(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  const auto graph = dcs::LoadDirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr,
                 "sketch works on directed graphs (see generate "
                 "--type balanced): %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const double epsilon = GetDouble(flags, "epsilon", 0.2);
  const double beta =
      GetDouble(flags, "beta",
                dcs::PerEdgeBalanceCertificate(*graph).value_or(1.0));
  // --backend routes through the sparsifier backend registry (any
  // registered name); the older --kind spelling keeps its historical
  // foreach/forall behavior and exact rng draw order.
  const std::string backend = GetFlag(flags, "backend", "");
  const std::string kind = GetFlag(flags, "kind", "foreach");
  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  std::unique_ptr<dcs::DirectedCutSketch> sketch;
  std::string label = kind;
  if (!backend.empty()) {
    dcs::BackendOptions options;
    options.epsilon = epsilon;
    options.beta = beta;
    options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
    options.median_boost = GetInt(flags, "median-boost", 1);
    auto built = dcs::BuildBackendSketch(backend, *graph, options);
    if (!built.ok()) {
      // The registry's kInvalidArgument message lists the valid names.
      std::fprintf(stderr, "--backend: %s\n",
                   std::string(built.status().message()).c_str());
      return 2;
    }
    sketch = std::move(built).value();
    label = backend;
  } else if (kind == "foreach") {
    sketch = std::make_unique<dcs::DirectedForEachSketch>(*graph, epsilon,
                                                          beta, rng);
  } else if (kind == "forall") {
    sketch = std::make_unique<dcs::DirectedForAllSketch>(*graph, epsilon,
                                                         beta, rng);
  } else {
    std::fprintf(stderr, "unknown --kind (foreach|forall)\n");
    return 2;
  }
  std::printf("%s sketch at eps=%.3f beta=%.2f: %lld bits (graph: %lld)\n",
              label.c_str(), epsilon, beta,
              static_cast<long long>(sketch->SizeInBits()),
              static_cast<long long>(
                  graph->num_edges() * 64));  // rough edge-list floor
  // Spot check: 5 random cuts.
  dcs::Rng cut_rng(7);
  std::printf("%-10s %12s %12s %10s\n", "cut", "exact", "estimate",
              "rel err");
  for (int trial = 0; trial < 5; ++trial) {
    dcs::VertexSet side(static_cast<size_t>(graph->num_vertices()));
    for (auto& bit : side) bit = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!dcs::IsProperCutSide(side)) continue;
    const double exact = graph->CutWeight(side);
    const double estimate = sketch->EstimateCut(side);
    std::printf("#%-9d %12.3f %12.3f %10.4f\n", trial, exact, estimate,
                exact > 0 ? std::abs(estimate - exact) / exact : 0.0);
  }
  return 0;
}

int CmdLocalQuery(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  const auto graph = dcs::LoadUndirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  const double epsilon = GetDouble(flags, "epsilon", 0.25);
  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  const dcs::LocalQueryMinCutResult result = dcs::EstimateMinCutLocalQueries(
      *graph, epsilon, dcs::SearchMode::kModifiedConstantSearch, rng);
  std::printf("estimated min cut: %.3f\n", result.estimate);
  std::printf("queries: %lld degree, %lld neighbor, %lld adjacency\n",
              static_cast<long long>(result.counts.degree),
              static_cast<long long>(result.counts.neighbor),
              static_cast<long long>(result.counts.adjacency));
  std::printf("Lemma 5.6 communication: %lld bits\n",
              static_cast<long long>(result.communication_bits));
  return 0;
}

int CmdAgm(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  const auto graph = dcs::LoadUndirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot read undirected graph from %s: %s\n",
                 in.c_str(), graph.status().ToString().c_str());
    return 1;
  }
  for (const dcs::Edge& e : graph->edges()) {
    if (e.weight != 1.0) {
      std::fprintf(stderr, "agm requires an unweighted graph\n");
      return 1;
    }
  }
  const uint64_t seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  const dcs::AgmConnectivitySketch sketch =
      dcs::SketchGraph(*graph, 0, seed);
  std::printf("AGM sketch: %lld bits, %lld linear measurements\n",
              static_cast<long long>(sketch.SizeInBits()),
              static_cast<long long>(sketch.MeasurementCount()));
  std::printf("components (from sketch): %d\n", sketch.CountComponents());
  std::printf("spanning forest edges: %zu\n",
              sketch.SpanningForest().size());
  return 0;
}

int CmdEncode(const FlagMap& flags) {
  const std::string message = GetFlag(flags, "message", "hello cuts");
  dcs::ForEachLowerBoundParams params;
  params.inv_epsilon = GetInt(flags, "inv-eps", 8);
  params.sqrt_beta = GetInt(flags, "sqrt-beta", 2);
  const int64_t needed = static_cast<int64_t>(message.size()) * 8;
  params.num_layers = 2;
  while (params.total_bits() < needed) ++params.num_layers;
  std::vector<int8_t> signs;
  for (char c : message) {
    for (int bit = 7; bit >= 0; --bit) {
      signs.push_back(((c >> bit) & 1) ? 1 : -1);
    }
  }
  while (static_cast<int64_t>(signs.size()) < params.total_bits()) {
    signs.push_back(1);
  }
  const dcs::ForEachEncoder encoder(params);
  const auto encoding = encoder.Encode(signs);
  std::printf("encoded %zu chars into a %d-vertex beta=%.0f-balanced graph "
              "(%lld edges)\n",
              message.size(), params.num_vertices(), params.beta(),
              static_cast<long long>(encoding.graph.num_edges()));
  const dcs::ForEachDecoder decoder(params);
  const dcs::CutOracle oracle = dcs::ExactCutOracle(encoding.graph);
  std::string decoded;
  for (size_t c = 0; c < message.size(); ++c) {
    char value = 0;
    for (int bit = 0; bit < 8; ++bit) {
      const int8_t sign = decoder.DecodeBit(
          static_cast<int64_t>(c * 8 + static_cast<size_t>(bit)), oracle);
      value = static_cast<char>((value << 1) | (sign > 0 ? 1 : 0));
    }
    decoded.push_back(value);
  }
  std::printf("decoded via cut queries: \"%s\"\n", decoded.c_str());
  return 0;
}

int CmdTrials(const FlagMap& flags) {
  const std::string kind = GetFlag(flags, "kind", "forall");
  const int trials = GetInt(flags, "trials", 20);
  const int threads = GetInt(flags, "threads", 1);
  const uint64_t seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  const double noise = GetDouble(flags, "noise", 0.0);
  const dcs::SeededCutOracleFactory oracle_factory =
      [noise](const dcs::DirectedGraph& graph,
              dcs::Rng& rng) -> dcs::CutOracle {
    if (noise <= 0) return dcs::ExactCutOracle(graph);
    return dcs::NoisyCutOracle(graph, noise, rng);
  };
  if (kind == "forall") {
    dcs::ForAllLowerBoundParams params;
    params.inv_epsilon_sq = GetInt(flags, "inv-eps-sq", 4);
    params.beta = GetInt(flags, "beta", 2);
    params.num_layers = GetInt(flags, "layers", 2);
    const std::string mode_name = GetFlag(flags, "mode", "greedy");
    if (mode_name != "greedy" && mode_name != "enumerate") {
      std::fprintf(stderr, "unknown --mode (greedy|enumerate)\n");
      return 2;
    }
    const auto mode = mode_name == "enumerate"
                          ? dcs::ForAllDecoder::SubsetSelection::kEnumerate
                          : dcs::ForAllDecoder::SubsetSelection::kGreedy;
    const dcs::ForAllTrialResult result = dcs::RunForAllTrials(
        params, trials, seed, oracle_factory, mode, threads);
    std::printf("forall %s: %lld/%lld correct (accuracy %.3f, threads %d)\n",
                mode_name.c_str(), static_cast<long long>(result.correct),
                static_cast<long long>(result.trials), result.accuracy(),
                threads);
    return 0;
  }
  if (kind == "foreach") {
    dcs::ForEachLowerBoundParams params;
    params.inv_epsilon = GetInt(flags, "inv-eps", 8);
    params.sqrt_beta = GetInt(flags, "sqrt-beta", 2);
    params.num_layers = GetInt(flags, "layers", 2);
    const int probes = GetInt(flags, "probes", 16);
    const dcs::ForEachTrialResult result = dcs::RunForEachTrials(
        params, trials, probes, seed, oracle_factory, threads);
    std::printf("foreach: %lld/%lld probes correct (accuracy %.3f, "
                "threads %d)\n",
                static_cast<long long>(result.correct),
                static_cast<long long>(result.probes), result.accuracy(),
                threads);
    return 0;
  }
  std::fprintf(stderr, "unknown --kind (forall|foreach)\n");
  return 2;
}

// Fills `channel` from the --chaos-* flags and returns true iff any of
// them was given (no chaos flags ⇒ no channel, exactly the old in-process
// behavior). Out-of-range rates are a usage error (exit 2), never an
// abort.
bool ParseChannelFlags(const FlagMap& flags, dcs::ChannelOptions& channel) {
  static const char* kRateFlags[] = {"chaos-drop", "chaos-flip",
                                     "chaos-truncate", "chaos-duplicate",
                                     "chaos-reorder"};
  bool any = HasFlag(flags, "chaos-seed") || HasFlag(flags, "chaos-rounds");
  for (const char* flag : kRateFlags) any = any || HasFlag(flags, flag);
  if (!any) return false;
  channel.seed = static_cast<uint64_t>(GetInt(flags, "chaos-seed", 1));
  channel.drop_rate = GetDouble(flags, "chaos-drop", 0.0);
  channel.flip_rate = GetDouble(flags, "chaos-flip", 0.0);
  channel.truncate_rate = GetDouble(flags, "chaos-truncate", 0.0);
  channel.duplicate_rate = GetDouble(flags, "chaos-duplicate", 0.0);
  channel.reorder_rate = GetDouble(flags, "chaos-reorder", 0.0);
  channel.max_rounds = GetInt(flags, "chaos-rounds", channel.max_rounds);
  for (const char* flag : kRateFlags) {
    const double rate = GetDouble(flags, flag, 0.0);
    if (rate < 0.0 || rate > 1.0) {
      std::fprintf(stderr, "flag --%s: rate must be in [0, 1]\n", flag);
      std::exit(2);
    }
  }
  if (channel.max_rounds < 1) {
    std::fprintf(stderr, "flag --chaos-rounds: must be >= 1\n");
    std::exit(2);
  }
  return true;
}

int CmdProtocol(const FlagMap& flags) {
  const std::string kind = GetFlag(flags, "kind", "foreach");
  const double sketch_eps = GetDouble(flags, "sketch-eps", 0.25);
  const double oversample = GetDouble(flags, "oversample", 2.0);
  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  dcs::ChannelOptions channel;
  const bool chaos = ParseChannelFlags(flags, channel);
  const dcs::ChannelOptions* channel_ptr = chaos ? &channel : nullptr;
  dcs::SketchProtocolResult result;
  if (kind == "foreach") {
    dcs::ForEachLowerBoundParams params;
    params.inv_epsilon = GetInt(flags, "inv-eps", 8);
    params.sqrt_beta = GetInt(flags, "sqrt-beta", 2);
    params.num_layers = GetInt(flags, "layers", 2);
    const int probes = GetInt(flags, "probes", 16);
    result = dcs::RunForEachSketchProtocol(params, sketch_eps, oversample,
                                           probes, rng, channel_ptr);
  } else if (kind == "forall") {
    dcs::ForAllLowerBoundParams params;
    params.inv_epsilon_sq = GetInt(flags, "inv-eps-sq", 4);
    params.beta = GetInt(flags, "beta", 2);
    params.num_layers = GetInt(flags, "layers", 2);
    const int trials = GetInt(flags, "trials", 8);
    result = dcs::RunForAllSketchProtocol(params, sketch_eps, oversample,
                                          trials, rng, channel_ptr);
  } else {
    std::fprintf(stderr, "unknown --kind (foreach|forall)\n");
    return 2;
  }
  // The decode line stays comparable across chaos settings (a fully
  // recovered run matches the fault-free run bit for bit); the transport
  // line carries everything the channel changed.
  std::printf("%s protocol: %lld/%lld correct (accuracy %.3f)%s\n",
              kind.c_str(), static_cast<long long>(result.correct),
              static_cast<long long>(result.probes), result.accuracy(),
              result.degraded() ? " [degraded]" : "");
  std::printf("transport: %lld message bits (sketch %lld, payload %lld, "
              "retransmitted %lld, lost %lld)\n",
              static_cast<long long>(result.message_bits),
              static_cast<long long>(result.sketch_bits),
              static_cast<long long>(result.payload_bits),
              static_cast<long long>(result.retransmitted_bits),
              static_cast<long long>(result.lost_messages));
  return 0;
}

int CmdDistributed(const FlagMap& flags) {
  const std::string in = GetFlag(flags, "in", "graph.txt");
  const auto graph = dcs::LoadUndirectedGraph(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  if (graph->num_vertices() < 2) {
    std::fprintf(stderr, "distributed needs a graph with >= 2 vertices\n");
    return 1;
  }
  const int servers = GetInt(flags, "servers", 4);
  if (servers < 1) {
    std::fprintf(stderr, "flag --servers: must be >= 1\n");
    return 2;
  }
  dcs::DistributedMinCutOptions options;
  options.epsilon = GetDouble(flags, "epsilon", 0.1);
  options.coarse_epsilon = GetDouble(flags, "coarse-eps", 0.2);
  options.median_boost = GetInt(flags, "median-boost", 3);
  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  const dcs::DistributedMinCutPipeline pipeline(
      dcs::PartitionEdges(*graph, servers, rng), options, rng);
  dcs::ChannelOptions channel;
  const bool chaos = ParseChannelFlags(flags, channel);
  dcs::DistributedMinCutPipeline::Result result;
  if (chaos) {
    auto run = pipeline.Run(rng, channel);
    if (!run.ok()) {
      std::fprintf(stderr, "distributed run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
  } else {
    result = pipeline.Run(rng);
  }
  std::printf("distributed min cut estimate: %.6f (|S| = %lld, "
              "%d candidates, %d servers)\n",
              result.estimate,
              static_cast<long long>(dcs::SetSize(result.best_side)),
              result.candidates_considered, servers);
  std::printf("sketch bits: %lld forall + %lld foreach = %lld "
              "(naive ship-all %lld)\n",
              static_cast<long long>(result.forall_bits),
              static_cast<long long>(result.foreach_bits),
              static_cast<long long>(result.total_bits()),
              static_cast<long long>(pipeline.NaiveShipAllBits()));
  if (chaos) {
    std::string lost;
    for (const int server : result.lost_servers) {
      if (!lost.empty()) lost += ",";
      lost += std::to_string(server);
    }
    std::printf("channel: %lld wire bits (%lld retransmitted), "
                "degraded %s%s%s, effective eps %.4f\n",
                static_cast<long long>(result.channel_wire_bits),
                static_cast<long long>(result.retransmitted_bits),
                result.degraded ? "yes" : "no",
                result.degraded ? ", lost servers " : "", lost.c_str(),
                result.effective_epsilon);
  }
  return 0;
}

int CmdServe(const FlagMap& flags) {
  const int n = GetInt(flags, "n", 64);
  const double p = GetDouble(flags, "p", 0.3);
  const double beta = GetDouble(flags, "beta", 2.0);
  const int rounds = GetInt(flags, "rounds", 4);
  const int batch_size = GetInt(flags, "batch", 256);
  const int pool_size = GetInt(flags, "pool", 32);
  if (n < 2 || rounds < 1 || batch_size < 1 || pool_size < 1) {
    std::fprintf(stderr,
                 "serve needs --n >= 2, --rounds/--batch/--pool >= 1\n");
    return 2;
  }
  dcs::CutQueryServiceOptions options;
  options.num_threads = GetInt(flags, "threads", 1);
  options.shard_size = GetInt(flags, "shard", 32);
  options.enable_cache = GetInt(flags, "cache", 1) != 0;
  options.cache_capacity =
      static_cast<int64_t>(GetInt(flags, "cache-capacity", 1 << 16));
  if (options.num_threads < 1 || options.shard_size < 1 ||
      options.cache_capacity < 1) {
    std::fprintf(stderr,
                 "serve needs --threads/--shard/--cache-capacity >= 1\n");
    return 2;
  }

  dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  const dcs::DirectedGraph graph = dcs::RandomBalancedDigraph(n, p, beta, rng);
  dcs::CutQueryService service(options);
  // Default object is the exact graph oracle; --backend serves the named
  // registry sparsifier instead (same memoization contract either way).
  dcs::CutQueryService::ObjectId object;
  const std::string backend = GetFlag(flags, "backend", "");
  if (backend.empty()) {
    object = service.RegisterGraph(graph);
  } else {
    dcs::BackendOptions backend_options;
    backend_options.epsilon = GetDouble(flags, "epsilon", 0.2);
    backend_options.beta = beta;
    backend_options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
    backend_options.median_boost = GetInt(flags, "median-boost", 1);
    const auto registered =
        service.RegisterBackendSketch(graph, backend, backend_options);
    if (!registered.ok()) {
      std::fprintf(stderr, "--backend: %s\n",
                   std::string(registered.status().message()).c_str());
      return 2;
    }
    object = *registered;
  }

  // A fixed pool of proper cut sides; every round's batch cycles through
  // it, so round 1 is all cold and later rounds are all warm.
  std::vector<dcs::VertexSet> pool;
  while (static_cast<int>(pool.size()) < pool_size) {
    dcs::VertexSet side(static_cast<size_t>(n));
    for (auto& bit : side) bit = static_cast<uint8_t>(rng.Next() & 1);
    if (dcs::IsProperCutSide(side)) pool.push_back(std::move(side));
  }
  std::vector<dcs::CutQueryService::Query> batch;
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back({object, pool[static_cast<size_t>(i) % pool.size()]});
  }

  std::printf("serving %d-vertex graph: %d rounds x %d queries "
              "(%zu distinct sides, %d threads, cache %s)\n",
              n, rounds, batch_size, pool.size(), options.num_threads,
              options.enable_cache ? "on" : "off");
  // First-seen answer per pool side; every later round must reproduce it
  // bit for bit (the memoization contract), cache on or off.
  std::vector<double> first_seen(pool.size());
  for (int round = 0; round < rounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<double> answers = service.AnswerBatch(batch);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    for (size_t i = 0; i < answers.size(); ++i) {
      const size_t side_index = i % pool.size();
      if (round == 0 && i == side_index) {
        first_seen[side_index] = answers[i];
      } else if (answers[i] != first_seen[side_index]) {
        std::fprintf(stderr,
                     "round %d query %zu: answer %.17g != first-seen "
                     "%.17g\n",
                     round, i, answers[i], first_seen[side_index]);
        return 1;
      }
    }
    std::printf("round %d: %8.3f ms  (%.0f queries/s)%s\n", round, ms,
                ms > 0 ? 1000.0 * batch_size / ms : 0.0,
                round == 0 ? "  [cold]" : "  [warm]");
  }
  const auto snapshot = dcs::metrics::Registry::Get().Snapshot();
  const auto counter = [&snapshot](const char* name) -> long long {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  std::printf("cache: %lld hits, %lld misses, %lld evictions "
              "(%lld entries); %lld logical queries\n",
              counter("serve.cache.hits"), counter("serve.cache.misses"),
              counter("serve.cache.evictions"),
              static_cast<long long>(service.cache_size()),
              counter("serve.query.logical"));
  return 0;
}

// The concurrent streaming ingestion pipeline (DESIGN.md §12).
//
//   dcs stream --make 1 --n 256 --updates 20000 --delete-frac 0.2
//       --seed 7 --out updates.bin
// writes a reproducible random insert/delete stream in the checksummed
// binary format (stream/binary_stream.h);
//
//   dcs stream --in updates.bin --inserters 2 --shards 4 --gutter 256
//       --k 2 --epochs 4
// replays it through a StreamIngestor, sealing --epochs snapshots along
// the way and reporting each epoch's connectivity (and min-cut-up-to-k
// when --k > 0) plus the final sketch digest. With --inserters > 1 the
// updates are partitioned *by edge* across producer threads: all updates
// of one edge stay with one producer in stream order, so per-edge
// insert/delete ordering — the thing delete validation checks — is
// preserved, and the final digest is identical to a serial replay.
//
// A delete of a never-inserted edge in the input is rejected with
// kFailedPrecondition and exits 1 (see README troubleshooting).
int CmdStream(const FlagMap& flags) {
  if (HasFlag(flags, "make")) {
    const int n = GetInt(flags, "n", 256);
    const int updates = GetInt(flags, "updates", 20000);
    const double delete_frac = GetDouble(flags, "delete-frac", 0.2);
    const std::string out = GetFlag(flags, "out", "updates.bin");
    if (n < 2 || updates < 0 || delete_frac < 0 || delete_frac > 1) {
      std::fprintf(stderr,
                   "stream --make needs --n >= 2, --updates >= 0, "
                   "--delete-frac in [0, 1]\n");
      return 2;
    }
    dcs::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
    dcs::BinaryStreamWriter writer(n);
    for (const dcs::EdgeUpdate& update :
         dcs::RandomUpdateStream(n, updates, delete_frac, rng)) {
      writer.Append(update);
    }
    const dcs::Status status = writer.WriteFile(out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %lld updates over %d vertices to %s\n",
                static_cast<long long>(writer.update_count()), n, out.c_str());
    return 0;
  }

  const std::string in = GetFlag(flags, "in", "updates.bin");
  const int inserters = GetInt(flags, "inserters", 1);
  const int epochs = GetInt(flags, "epochs", 1);
  dcs::StreamIngestorOptions options;
  options.num_shards = GetInt(flags, "shards", 4);
  options.gutter_capacity = GetInt(flags, "gutter", 256);
  options.num_threads = GetInt(flags, "threads", 1);
  options.k = GetInt(flags, "k", 0);
  options.rounds = GetInt(flags, "rounds", 0);
  options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  if (inserters < 1 || epochs < 1 || options.num_shards < 1 ||
      options.gutter_capacity < 1 || options.num_threads < 1 ||
      options.k < 0 || options.rounds < 0) {
    std::fprintf(stderr,
                 "stream needs --inserters/--epochs/--shards/--gutter/"
                 "--threads >= 1 and --k/--rounds >= 0\n");
    return 2;
  }

  auto reader = dcs::BinaryStreamReader::FromFile(in);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::vector<dcs::EdgeUpdate> updates;
  updates.reserve(static_cast<size_t>(reader->update_count()));
  while (!reader->AtEnd()) {
    auto update = reader->Next();
    if (!update.ok()) {
      std::fprintf(stderr, "%s\n", update.status().ToString().c_str());
      return 1;
    }
    updates.push_back(*update);
  }

  dcs::StreamIngestor ingestor(reader->num_vertices(), options);
  std::printf("replaying %zu updates over %d vertices: %d inserters, "
              "%d shards, gutter %d, k %d, %d epoch%s\n",
              updates.size(), reader->num_vertices(), inserters,
              options.num_shards, options.gutter_capacity, options.k, epochs,
              epochs == 1 ? "" : "s");

  const size_t per_epoch = (updates.size() + static_cast<size_t>(epochs) - 1) /
                           static_cast<size_t>(epochs);
  for (int e = 0; e < epochs; ++e) {
    const size_t begin = std::min(static_cast<size_t>(e) * per_epoch,
                                  updates.size());
    const size_t end = std::min(begin + per_epoch, updates.size());
    // Partition this epoch's slice by edge: producer of {u, v} is a hash of
    // the canonical endpoints, so one producer sees all of an edge's
    // updates in stream order and delete validation is interleaving-proof.
    std::vector<std::vector<dcs::EdgeUpdate>> slices(
        static_cast<size_t>(inserters));
    for (size_t i = begin; i < end; ++i) {
      const dcs::EdgeUpdate& update = updates[i];
      const uint64_t lo = static_cast<uint64_t>(
          update.u < update.v ? update.u : update.v);
      const uint64_t hi = static_cast<uint64_t>(
          update.u < update.v ? update.v : update.u);
      const uint64_t key = (lo << 32 | hi) * 0x9e3779b97f4a7c15ULL;
      slices[(key >> 32) % static_cast<uint64_t>(inserters)].push_back(update);
    }
    std::vector<dcs::Status> results(static_cast<size_t>(inserters));
    const auto push_slice = [&ingestor](const std::vector<dcs::EdgeUpdate>&
                                            slice,
                                        dcs::Status& result) {
      for (const dcs::EdgeUpdate& update : slice) {
        result = ingestor.Push(update);
        if (!result.ok()) return;
      }
    };
    if (inserters == 1) {
      push_slice(slices[0], results[0]);
    } else {
      std::vector<std::thread> producers;
      producers.reserve(static_cast<size_t>(inserters));
      for (int p = 0; p < inserters; ++p) {
        producers.emplace_back(push_slice,
                               std::cref(slices[static_cast<size_t>(p)]),
                               std::ref(results[static_cast<size_t>(p)]));
      }
      for (std::thread& producer : producers) producer.join();
    }
    for (const dcs::Status& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.ToString().c_str());
        return 1;
      }
    }
    const auto epoch = ingestor.Barrier();
    if (!epoch.ok()) {
      std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
      return 1;
    }
    const auto snapshot = ingestor.snapshot();
    if (options.k > 0) {
      std::printf("epoch %lld: %lld updates, %d components, mincut<=k %.0f\n",
                  static_cast<long long>(snapshot->epoch),
                  static_cast<long long>(snapshot->updates_applied),
                  snapshot->components, snapshot->min_cut_up_to_k);
    } else {
      std::printf("epoch %lld: %lld updates, %d components, %s\n",
                  static_cast<long long>(snapshot->epoch),
                  static_cast<long long>(snapshot->updates_applied),
                  snapshot->components,
                  snapshot->connected ? "connected" : "disconnected");
    }
  }
  std::printf("final digest %016llx\n",
              static_cast<unsigned long long>(ingestor.snapshot()->digest));
  return 0;
}

// dcs store — poke a disk-backed sketch store directory (DESIGN.md §15).
//   put     --dir D --id K --in graph.txt   serialize the directed graph,
//           append it as object K, seal (durable on return)
//   get     --dir D --id K --out graph.txt  read object K back (directed
//           graphs only) and write it as a text graph
//   compact --dir D                         rewrite the newest version of
//           every object into one fresh sealed segment
//   fsck    --dir D                         read-only per-segment verdict:
//           sealed / unsealed / recovered_torn_tail / corrupt. Exit 1 if
//           any segment is corrupt beyond a torn tail (`data_loss:
//           segment`); a recoverable torn tail alone is exit 0.
int CmdStore(const FlagMap& flags) {
  const std::string dir = GetFlag(flags, "dir", "");
  const std::string op = GetFlag(flags, "op", "");
  if (dir.empty() || op.empty()) {
    std::fprintf(stderr,
                 "dcs store needs --dir DIR and --op put|get|compact|fsck\n");
    return 2;
  }
  if (op == "fsck") {
    // Deliberately not SketchStore::Open: fsck must never write, and Open
    // truncates torn tails in place.
    const auto report = dcs::FsckSketchStore(dir);
    if (!report.ok()) {
      std::fprintf(stderr, "fsck %s: %s\n", dir.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    for (const auto& segment : report->segments) {
      std::printf("%s: %s records %lld dropped_tail_bytes %lld%s%s\n",
                  segment.file.c_str(), segment.state.c_str(),
                  static_cast<long long>(segment.records),
                  static_cast<long long>(segment.dropped_tail_bytes),
                  segment.detail.empty() ? "" : " ", segment.detail.c_str());
    }
    std::printf("segments %lld corrupt %lld recovered_torn_tail %lld\n",
                static_cast<long long>(report->segments.size()),
                static_cast<long long>(report->corrupt_segments),
                static_cast<long long>(report->recovered_segments));
    if (!report->clean()) {
      std::fprintf(stderr, "FAIL: data_loss: segment damage beyond a torn "
                           "tail\n");
      return 1;
    }
    return 0;
  }
  auto store = dcs::SketchStore::Open(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "cannot open store %s: %s\n", dir.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  if (op == "put") {
    const std::string in = GetFlag(flags, "in", "");
    const int id = GetInt(flags, "id", -1);
    if (in.empty() || id < 0) {
      std::fprintf(stderr, "store put needs --in FILE and --id K (>= 0)\n");
      return 2;
    }
    const auto graph = dcs::LoadDirectedGraph(in);
    if (!graph.ok()) {
      std::fprintf(stderr, "cannot read directed graph from %s: %s\n",
                   in.c_str(), graph.status().ToString().c_str());
      return 1;
    }
    dcs::BitWriter writer;
    dcs::SerializeDirectedGraph(*graph, writer);
    dcs::Status status = (*store)->Put(id, dcs::StreamKind::kDirectedGraph,
                                       writer.bytes(), writer.bit_count());
    if (status.ok()) status = (*store)->Seal();
    if (!status.ok()) {
      std::fprintf(stderr, "put failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("put object %d: %lld bits; store now holds %lld objects\n",
                id, static_cast<long long>(writer.bit_count()),
                static_cast<long long>((*store)->num_objects()));
    return 0;
  }
  if (op == "get") {
    const std::string out = GetFlag(flags, "out", "");
    const int id = GetInt(flags, "id", -1);
    if (out.empty() || id < 0) {
      std::fprintf(stderr, "store get needs --out FILE and --id K (>= 0)\n");
      return 2;
    }
    const auto object = (*store)->Get(id);
    if (!object.ok()) {
      std::fprintf(stderr, "get failed: %s\n",
                   object.status().ToString().c_str());
      return 1;
    }
    if (object->kind != dcs::StreamKind::kDirectedGraph) {
      std::fprintf(stderr, "object %d holds a %s, not a directed graph\n",
                   id, dcs::StreamKindName(object->kind));
      return 1;
    }
    dcs::BitReader reader(object->bytes);
    const auto graph = dcs::DeserializeDirectedGraph(reader);
    if (!graph.ok()) {
      std::fprintf(stderr, "object %d does not decode: %s\n", id,
                   graph.status().ToString().c_str());
      return 1;
    }
    const dcs::Status saved = dcs::SaveDirectedGraph(*graph, out);
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("got object %d: n=%d m=%lld -> %s\n", id,
                graph->num_vertices(),
                static_cast<long long>(graph->num_edges()), out.c_str());
    return 0;
  }
  if (op == "compact") {
    const auto report = (*store)->Compact();
    if (!report.ok()) {
      std::fprintf(stderr, "compact failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("compacted: %lld -> %lld bytes, %lld superseded records "
                "dropped\n",
                static_cast<long long>(report->bytes_before),
                static_cast<long long>(report->bytes_after),
                static_cast<long long>(report->records_dropped));
    return 0;
  }
  std::fprintf(stderr, "unknown --op '%s' (put|get|compact|fsck)\n",
               op.c_str());
  return 2;
}

// Removes a mkdtemp'd cluster scratch directory on *every* exit path —
// early usage errors, worker-spawn failures, and the normal return alike.
// The destructor sweeps whatever the directory actually contains (stale
// sockets from SIGKILLed workers, partially-created files) instead of a
// guessed name list, so a failed or partial run cannot leak
// /tmp/dcs_cluster_XXXXXX.
class ScopedSocketDir {
 public:
  explicit ScopedSocketDir(std::string path) : path_(std::move(path)) {}
  ScopedSocketDir(const ScopedSocketDir&) = delete;
  ScopedSocketDir& operator=(const ScopedSocketDir&) = delete;
  ~ScopedSocketDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }

 private:
  const std::string path_;
};

// dcs cluster — the multi-process chaos soak (DESIGN.md §14): spawn a
// worker fleet, drive replicated query traffic through the failover
// client while SIGKILLing workers at --kill-rate, and gate on the
// zero-wrong-bits invariant. Exit 1 if any completed answer differed from
// the single-process oracle or any loss surfaced as something other than
// kUnavailable/kResourceExhausted. With --store-root DIR each worker
// persists to DIR/worker<w> and respawns warm-load from disk, so repairs
// reattach instead of re-sending graphs.
int CmdCluster(const FlagMap& flags) {
  dcs::ClusterLoadOptions options;
#ifdef DCS_SERVER_DEFAULT_PATH
  options.server_binary =
      GetFlag(flags, "server", DCS_SERVER_DEFAULT_PATH);
#else
  options.server_binary = GetFlag(flags, "server", "./dcs_server");
#endif
  options.num_workers = GetInt(flags, "workers", 4);
  options.replication = GetInt(flags, "replication", 2);
  options.num_client_threads = GetInt(flags, "clients", 2);
  options.batches_per_thread = GetInt(flags, "batches", 40);
  options.batch_size = GetInt(flags, "batch", 8);
  options.kill_rate = GetDouble(flags, "kill-rate", 0.0);
  options.kill_interval_ms = GetInt(flags, "kill-interval-ms", 25);
  options.respawn_delay_ms = GetInt(flags, "respawn-delay-ms", 10);
  options.num_vertices = GetInt(flags, "n", 48);
  options.num_edges = GetInt(flags, "edges", 320);
  options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  options.worker.num_shards = GetInt(flags, "shards", 2);
  options.worker.queue_capacity = GetInt(flags, "queue-capacity", 64);
  options.worker.execution_delay_ms =
      GetInt(flags, "execution-delay-ms", 0);
  options.worker.warm_cache_entries = GetInt(flags, "warm-cache", 4096);
  options.store_root = GetFlag(flags, "store-root", "");
  // Every bound is re-checked here, BEFORE any side effect: the same
  // bounds are enforced by ClusterLoadOptions::Check() with DCS_CHECK,
  // and an abort after mkdtemp would leak the scratch directory.
  if (options.kill_rate < 0 || options.kill_rate > 1) {
    std::fprintf(stderr, "--kill-rate must be in [0, 1]\n");
    return 2;
  }
  if (options.num_workers < 1 || options.replication < 1 ||
      options.num_client_threads < 1 || options.batches_per_thread < 1 ||
      options.batch_size < 1 || options.kill_interval_ms < 1 ||
      options.respawn_delay_ms < 0 || options.num_vertices < 2 ||
      options.num_edges < 1 || options.worker.num_shards < 1 ||
      options.worker.queue_capacity < 1 ||
      options.worker.execution_delay_ms < 0 ||
      options.worker.warm_cache_entries < 0) {
    std::fprintf(stderr,
                 "cluster flags out of range (workers/replication/clients/"
                 "batches/batch/kill-interval-ms/shards/queue-capacity >= 1, "
                 "respawn-delay-ms/execution-delay-ms/warm-cache >= 0, "
                 "n >= 2, edges >= 1)\n");
    return 2;
  }
  if (!options.store_root.empty()) {
    // One level deep is enough: per-worker subdirectories are created by
    // SketchStore::Open inside the workers.
    if (::mkdir(options.store_root.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "cannot create store root %s: %s\n",
                   options.store_root.c_str(), std::strerror(errno));
      return 1;
    }
  }

  std::string socket_dir = GetFlag(flags, "socket-dir", "");
  char dir_template[] = "/tmp/dcs_cluster_XXXXXX";
  std::unique_ptr<ScopedSocketDir> scratch;
  if (socket_dir.empty()) {
    if (::mkdtemp(dir_template) == nullptr) {
      std::fprintf(stderr, "cannot create socket directory: %s\n",
                   std::strerror(errno));
      return 1;
    }
    socket_dir = dir_template;
    scratch = std::make_unique<ScopedSocketDir>(socket_dir);
  }
  options.socket_dir = socket_dir;

  const auto report = dcs::RunClusterLoad(options);
  if (!report.ok()) {
    std::fprintf(stderr, "cluster soak failed to run: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("workers %d replication %d clients %d kill_rate %.2f\n",
              options.num_workers, options.replication,
              options.num_client_threads, options.kill_rate);
  std::printf(
      "batches ok %lld unavailable %lld resource_exhausted %lld "
      "other_error %lld\n",
      static_cast<long long>(report->batches_ok),
      static_cast<long long>(report->batches_unavailable),
      static_cast<long long>(report->batches_resource_exhausted),
      static_cast<long long>(report->batches_other_error));
  std::printf("kills %lld respawns %lld reattaches %lld\n",
              static_cast<long long>(report->kills),
              static_cast<long long>(report->respawns),
              static_cast<long long>(report->reattaches));
  std::printf("qps %.1f latency_p50_us %lld latency_p99_us %lld\n",
              report->qps, static_cast<long long>(report->latency_p50_us),
              static_cast<long long>(report->latency_p99_us));
  std::printf("wrong_bits %lld answers_bit_identical %s\n",
              static_cast<long long>(report->wrong_bits),
              report->answers_bit_identical() ? "true" : "false");
  if (!report->answers_bit_identical()) {
    std::fprintf(stderr,
                 "FAIL: a completed answer differed from the oracle\n");
    return 1;
  }
  if (report->batches_other_error > 0) {
    std::fprintf(stderr,
                 "FAIL: a loss surfaced as something other than "
                 "unavailable/resource_exhausted\n");
    return 1;
  }
  if (report->batches_ok == 0) {
    std::fprintf(stderr, "FAIL: no batch completed\n");
    return 1;
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: dcs <generate|stats|mincut|sketch|localquery|encode|"
               "agm|trials|protocol|distributed|serve|stream|cluster|store> "
               "[--flag value ...] [--metrics-json FILE]\n");
}

// Writes the process-wide metrics snapshot to `path`. Returns 1 (runtime
// error) on I/O failure, 0 otherwise.
int WriteMetricsJson(const std::string& path, const std::string& command) {
  dcs::JsonValue root = dcs::JsonValue::MakeObject();
  root.Set("binary", "dcs");
  root.Set("command", command);
  root.Set("metrics_enabled", DCS_METRICS_ENABLED != 0);
  root.Set("metrics", dcs::metrics::Registry::Get().Snapshot().ToJson());
  const std::string text = root.Dump(2) + "\n";
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for metrics output\n", path.c_str());
    return 1;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  if (std::fclose(file) != 0 || !ok) {
    std::fprintf(stderr, "failed to write metrics to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

int RunCommand(const std::string& command, const FlagMap& flags) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "mincut") return CmdMinCut(flags);
  if (command == "sketch") return CmdSketch(flags);
  if (command == "localquery") return CmdLocalQuery(flags);
  if (command == "encode") return CmdEncode(flags);
  if (command == "agm") return CmdAgm(flags);
  if (command == "trials") return CmdTrials(flags);
  if (command == "protocol") return CmdProtocol(flags);
  if (command == "distributed") return CmdDistributed(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "stream") return CmdStream(flags);
  if (command == "cluster") return CmdCluster(flags);
  if (command == "store") return CmdStore(flags);
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  FlagMap flags = ParseFlags(argc, argv, 2);
  std::string metrics_path;
  if (const auto it = flags.find("metrics-json"); it != flags.end()) {
    metrics_path = it->second;
    flags.erase(it);
  }
  int rc = RunCommand(command, flags);
  if (!metrics_path.empty()) {
    // The snapshot is written even after a failing command (a failed run's
    // resource counts are exactly what one wants to inspect); a metrics
    // write failure only surfaces when the command itself succeeded.
    const int metrics_rc = WriteMetricsJson(metrics_path, command);
    if (rc == 0) rc = metrics_rc;
  }
  return rc;
}
