// Socket transport + multi-process serving tier tests (DESIGN.md §14):
// endpoint parsing, loopback framing round trips, deadlines, backoff
// connects, bounded-queue admission control, worker dispatch over real
// sockets, replication failover, token-mismatch repair, survivor-rescale
// degradation, and fork/exec'd dcs_server worker processes.

#include <signal.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "graph/digraph.h"
#include "serve/cluster.h"
#include "serve/cluster_client.h"
#include "serve/cut_query_service.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "serve/worker_process.h"
#include "store/sketch_store.h"
#include "util/bitio.h"
#include "util/random.h"

namespace dcs {
namespace {

Endpoint Loopback() {
  auto endpoint = ParseEndpoint("tcp:127.0.0.1:0");
  EXPECT_TRUE(endpoint.ok());
  return *endpoint;
}

Message RandomMessage(int64_t bits, uint64_t seed) {
  Rng rng(seed);
  BitWriter writer;
  for (int64_t i = 0; i < bits; ++i) writer.WriteBit(rng.Bernoulli(0.5));
  return SealMessage(writer);
}

DirectedGraph TestGraph(int n, int m, uint64_t seed) {
  Rng rng(seed);
  DirectedGraph graph(n);
  for (int e = 0; e < m; ++e) {
    const int u = static_cast<int>(rng.UniformInt(n));
    int v = (u + 1) % n;
    if (rng.Bernoulli(0.5)) v = (u + 2) % n;
    graph.AddEdge(u, v, 0.25 + rng.UniformDouble());
  }
  return graph;
}

std::vector<VertexSet> RandomSides(int n, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexSet> sides;
  for (int i = 0; i < count; ++i) {
    VertexSet side(static_cast<size_t>(n), 0);
    for (auto& bit : side) bit = rng.Bernoulli(0.5) ? 1 : 0;
    sides.push_back(std::move(side));
  }
  return sides;
}

// An in-process worker with its Serve() loop on a background thread.
struct ServingWorker {
  std::unique_ptr<ClusterWorker> worker;
  std::thread thread;

  ServingWorker() = default;
  ServingWorker(ServingWorker&&) = default;
  ServingWorker& operator=(ServingWorker&& other) {
    Stop();
    worker = std::move(other.worker);
    thread = std::move(other.thread);
    return *this;
  }
  void Stop() {
    if (worker != nullptr) worker->RequestStop();
    if (thread.joinable()) thread.join();
  }
  ~ServingWorker() { Stop(); }
};

ServingWorker StartWorker(ClusterWorkerOptions options = {},
                          const std::string& spec = "tcp:127.0.0.1:0") {
  auto endpoint = ParseEndpoint(spec);
  EXPECT_TRUE(endpoint.ok());
  auto created = ClusterWorker::Create(*endpoint, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  ServingWorker serving;
  serving.worker = std::move(*created);
  ClusterWorker* raw = serving.worker.get();
  serving.thread = std::thread([raw] {
    const Status status = raw->Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  return serving;
}

// Fast-failing client transport so failover tests don't sit out the full
// production backoff schedule.
TransportOptions FastTransport() {
  TransportOptions transport;
  transport.connect_timeout_ms = 500;
  transport.io_timeout_ms = 2000;
  transport.reconnect_base_ms = 1;
  transport.reconnect_cap_ms = 4;
  transport.max_connect_attempts = 2;
  return transport;
}

TEST(EndpointTest, ParsesAndRoundTrips) {
  auto unix_endpoint = ParseEndpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_endpoint.ok());
  EXPECT_TRUE(unix_endpoint->is_unix);
  EXPECT_EQ(unix_endpoint->path, "/tmp/x.sock");
  EXPECT_EQ(unix_endpoint->ToSpec(), "unix:/tmp/x.sock");

  auto tcp_endpoint = ParseEndpoint("tcp:127.0.0.1:8080");
  ASSERT_TRUE(tcp_endpoint.ok());
  EXPECT_FALSE(tcp_endpoint->is_unix);
  EXPECT_EQ(tcp_endpoint->host, "127.0.0.1");
  EXPECT_EQ(tcp_endpoint->port, 8080);
  EXPECT_EQ(tcp_endpoint->ToSpec(), "tcp:127.0.0.1:8080");
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "unix:", "tcp:127.0.0.1", "tcp:127.0.0.1:notaport",
        "tcp:127.0.0.1:70000", "tcp::80", "http:example.com:80",
        "tcp:127.0.0.1:-1"}) {
    auto endpoint = ParseEndpoint(bad);
    EXPECT_FALSE(endpoint.ok()) << bad;
    EXPECT_EQ(endpoint.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(TransportTest, LoopbackRoundTripBothDirections) {
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  auto client = Connect(listener->local_endpoint(), 1000);
  ASSERT_TRUE(client.ok());
  auto server = listener->Accept(1000);
  ASSERT_TRUE(server.ok());

  const Message request = RandomMessage(777, 1);
  ASSERT_TRUE(client->Send(request, 1000).ok());
  auto received = server->Receive(1000);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->bit_count, request.bit_count);
  EXPECT_EQ(received->bytes, request.bytes);

  const Message response = RandomMessage(13, 2);
  ASSERT_TRUE(server->Send(response, 1000).ok());
  auto echoed = client->Receive(1000);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed->bytes, response.bytes);
}

TEST(TransportTest, MultiChunkMessageIsBitExact) {
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  auto client = Connect(listener->local_endpoint(), 1000);
  ASSERT_TRUE(client.ok());
  auto server = listener->Accept(1000);
  ASSERT_TRUE(server.ok());

  // > 3 chunks at 2^15 payload bits per chunk, with a ragged tail.
  const Message big = RandomMessage((int64_t{1} << 15) * 3 + 4097, 3);
  std::thread sender(
      [&] { EXPECT_TRUE(client->Send(big, 5000).ok()); });
  auto received = server->Receive(5000);
  sender.join();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->bit_count, big.bit_count);
  EXPECT_EQ(received->bytes, big.bytes);
}

TEST(TransportTest, ReceiveDeadlineIsMarkedAsTransportDeadline) {
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  auto client = Connect(listener->local_endpoint(), 1000);
  ASSERT_TRUE(client.ok());
  auto server = listener->Accept(1000);
  ASSERT_TRUE(server.ok());

  auto received = server->Receive(50);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(received.status().message().rfind("transport deadline:", 0), 0u)
      << received.status().ToString();
}

TEST(TransportTest, PeerCloseIsUnavailable) {
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  auto client = Connect(listener->local_endpoint(), 1000);
  ASSERT_TRUE(client.ok());
  auto server = listener->Accept(1000);
  ASSERT_TRUE(server.ok());

  client->Close();
  auto received = server->Receive(1000);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
}

TEST(TransportTest, ConnectWithBackoffFailsAfterCappedAttempts) {
  // Bind then close to find a port that refuses connections.
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  const Endpoint vacated = listener->local_endpoint();
  listener->Close();

  TransportOptions options = FastTransport();
  options.max_connect_attempts = 3;
  Rng rng(7);
  auto connection = ConnectWithBackoff(vacated, options, rng);
  ASSERT_FALSE(connection.ok());
  EXPECT_EQ(connection.status().code(), StatusCode::kUnavailable);
}

TEST(TransportTest, ConnectWithBackoffSucceedsOnLiveListener) {
  auto listener = Listener::Listen(Loopback());
  ASSERT_TRUE(listener.ok());
  Rng rng(7);
  auto connection =
      ConnectWithBackoff(listener->local_endpoint(), FastTransport(), rng);
  EXPECT_TRUE(connection.ok()) << connection.status().ToString();
}

TEST(BoundedJobQueueTest, AdmissionControlAndDrain) {
  BoundedJobQueue queue(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(queue.TryPush([&] { ++ran; }).ok());
  EXPECT_TRUE(queue.TryPush([&] { ++ran; }).ok());
  const Status full = queue.TryPush([&] { ++ran; });
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);

  queue.Stop();
  const Status stopped = queue.TryPush([&] { ++ran; });
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.code(), StatusCode::kUnavailable);

  // Drain-then-stop: jobs admitted before Stop still pop and run.
  int popped = 0;
  while (auto job = queue.Pop()) {
    (*job)();
    ++popped;
  }
  EXPECT_EQ(popped, 2);
  EXPECT_EQ(ran.load(), 2);
}

TEST(ClusterWorkerTest, PingCarriesNonzeroToken) {
  ServingWorker serving = StartWorker();
  auto connection = Connect(serving.worker->endpoint(), 1000);
  ASSERT_TRUE(connection.ok());
  RpcRequest ping;
  ping.kind = RpcKind::kPing;
  ASSERT_TRUE(connection->Send(EncodeRpcRequest(ping), 1000).ok());
  auto reply = connection->Receive(2000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto response = DecodeRpcResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.ok());
  EXPECT_NE(response->server_token, 0u);
  EXPECT_EQ(response->server_token, serving.worker->token());
}

TEST(ClusterWorkerTest, RegisterAndQueryOverSocketIsBitIdentical) {
  ServingWorker serving = StartWorker();
  const DirectedGraph graph = TestGraph(24, 140, 11);
  const std::vector<VertexSet> sides = RandomSides(24, 9, 12);

  CutQueryService reference;
  const auto reference_id = reference.RegisterGraph(graph);
  std::vector<CutQueryService::Query> reference_batch;
  for (const VertexSet& side : sides) {
    reference_batch.push_back(CutQueryService::Query{reference_id, side});
  }
  const std::vector<double> expected = reference.AnswerBatch(reference_batch);

  auto connection = Connect(serving.worker->endpoint(), 1000);
  ASSERT_TRUE(connection.ok());
  RpcRequest reg;
  reg.kind = RpcKind::kRegisterGraph;
  reg.graph = graph;
  ASSERT_TRUE(connection->Send(EncodeRpcRequest(reg), 2000).ok());
  auto reg_reply = connection->Receive(2000);
  ASSERT_TRUE(reg_reply.ok());
  auto reg_response = DecodeRpcResponse(*reg_reply);
  ASSERT_TRUE(reg_response.ok());
  ASSERT_TRUE(reg_response->status.ok()) << reg_response->status.ToString();

  RpcRequest query;
  query.kind = RpcKind::kQueryBatch;
  query.object_id = reg_response->object_id;
  query.num_vertices = graph.num_vertices();
  query.sides = sides;
  ASSERT_TRUE(connection->Send(EncodeRpcRequest(query), 2000).ok());
  auto reply = connection->Receive(2000);
  ASSERT_TRUE(reply.ok());
  auto response = DecodeRpcResponse(*reply);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  ASSERT_EQ(response->values.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // The invariant the whole tier rests on: the remote answer is the
    // same IEEE double, not merely close.
    EXPECT_EQ(std::memcmp(&response->values[i], &expected[i],
                          sizeof(double)),
              0)
        << "query " << i;
  }
}

TEST(ClusterWorkerTest, RejectsUnknownObjectAndVertexMismatch) {
  ServingWorker serving = StartWorker();
  const DirectedGraph graph = TestGraph(10, 30, 5);
  RpcRequest reg;
  reg.kind = RpcKind::kRegisterGraph;
  reg.graph = graph;
  RpcResponse reg_response = serving.worker->Execute(reg);
  ASSERT_TRUE(reg_response.status.ok());

  RpcRequest unknown;
  unknown.kind = RpcKind::kQueryBatch;
  unknown.object_id = 999;
  unknown.num_vertices = 10;
  unknown.sides = RandomSides(10, 1, 6);
  EXPECT_EQ(serving.worker->Execute(unknown).status.code(),
            StatusCode::kNotFound);

  RpcRequest mismatch;
  mismatch.kind = RpcKind::kQueryBatch;
  mismatch.object_id = reg_response.object_id;
  mismatch.num_vertices = 11;
  mismatch.sides = RandomSides(11, 1, 6);
  EXPECT_EQ(serving.worker->Execute(mismatch).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterWorkerTest, FullQueueFastRejectsButAnswersPing) {
  ClusterWorkerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.execution_delay_ms = 400;
  ServingWorker serving = StartWorker(options);

  // Two saturators keep the single shard busy: one executing, one queued.
  // Nonexistent object ids still go through admission + the shard thread.
  // They loop (refilling the slot they just vacated) until the main
  // thread has observed a rejection, so the client cannot simply wait out
  // a one-shot saturation window while parked inside its own request.
  std::atomic<bool> saturating{true};
  auto saturate = [&](int id) {
    RpcRequest query;
    query.kind = RpcKind::kQueryBatch;
    query.object_id = 100 + id;
    query.num_vertices = 4;
    query.sides = RandomSides(4, 1, static_cast<uint64_t>(id));
    while (saturating.load()) {
      serving.worker->Execute(query);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  std::thread first(saturate, 1);
  std::thread second(saturate, 2);

  // Over the socket, retry until the full queue's fast reject is observed
  // (the saturators dispatch asynchronously), then check it really was
  // fast — it must not have waited out the running job's delay.
  auto connection = Connect(serving.worker->endpoint(), 1000);
  ASSERT_TRUE(connection.ok());
  Status rejected = OkStatus();
  int64_t reject_ms = 0;
  for (int attempt = 0; attempt < 60 && rejected.ok(); ++attempt) {
    RpcRequest query;
    query.kind = RpcKind::kQueryBatch;
    query.object_id = 0;
    query.num_vertices = 4;
    query.sides = RandomSides(4, 1, 3);
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(connection->Send(EncodeRpcRequest(query), 1000).ok());
    auto reply = connection->Receive(5000);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto response = DecodeRpcResponse(*reply);
    ASSERT_TRUE(response.ok());
    if (response->status.code() == StatusCode::kResourceExhausted) {
      rejected = response->status;
      reject_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      elapsed)
                      .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(rejected.ok()) << "queue-full rejection never surfaced";
  EXPECT_LT(reject_ms, 300);

  // Health checks bypass the shard queues, so overload never reads as
  // death.
  RpcRequest ping;
  ping.kind = RpcKind::kPing;
  ASSERT_TRUE(connection->Send(EncodeRpcRequest(ping), 1000).ok());
  auto ping_reply = connection->Receive(2000);
  ASSERT_TRUE(ping_reply.ok());
  auto ping_response = DecodeRpcResponse(*ping_reply);
  ASSERT_TRUE(ping_response.ok());
  EXPECT_TRUE(ping_response->status.ok());

  saturating.store(false);
  first.join();
  second.join();
}

TEST(ClusterWorkerTest, DrainsInFlightRequestOnStop) {
  ClusterWorkerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 4;
  options.execution_delay_ms = 200;
  ServingWorker serving = StartWorker(options);

  const DirectedGraph graph = TestGraph(8, 20, 9);
  RpcRequest reg;
  reg.kind = RpcKind::kRegisterGraph;
  reg.graph = graph;
  const RpcResponse reg_response = serving.worker->Execute(reg);
  ASSERT_TRUE(reg_response.status.ok());

  auto connection = Connect(serving.worker->endpoint(), 1000);
  ASSERT_TRUE(connection.ok());
  RpcRequest query;
  query.kind = RpcKind::kQueryBatch;
  query.object_id = reg_response.object_id;
  query.num_vertices = graph.num_vertices();
  query.sides = RandomSides(graph.num_vertices(), 2, 10);
  ASSERT_TRUE(connection->Send(EncodeRpcRequest(query), 1000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // SIGTERM semantics: stop requested while the query is mid-execution.
  serving.worker->RequestStop();
  auto reply = connection->Receive(5000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto response = DecodeRpcResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.ok()) << response->status.ToString();
  EXPECT_EQ(response->values.size(), 2u);
}

TEST(ClusterWorkerTest, DrainSealsStoreSegments) {
  // Satellite of the §15 store work: the SIGTERM drain (RequestStop +
  // Serve running to completion) must seal the open segment, so a kill
  // *after* the drain finds nothing fsck calls corrupt — at worst nothing
  // at all to recover.
  char dir_template[] = "/tmp/dcs_drain_store_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string store_dir = std::string(dir_template) + "/store";

  {
    ClusterWorkerOptions options;
    options.store_dir = store_dir;
    ServingWorker serving = StartWorker(options);
    for (int g = 0; g < 3; ++g) {
      RpcRequest reg;
      reg.kind = RpcKind::kRegisterGraph;
      reg.graph = TestGraph(10 + g, 30, 70 + static_cast<uint64_t>(g));
      ASSERT_TRUE(serving.worker->Execute(reg).status.ok());
    }
    // Stop() requests the drain and joins Serve(), whose return value the
    // serving thread asserts OK — a failed seal would fail the test there.
  }

  const auto fsck = FsckSketchStore(store_dir);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  ASSERT_FALSE(fsck->segments.empty());
  for (const auto& segment : fsck->segments) {
    EXPECT_EQ(segment.state, "sealed") << segment.file << ": "
                                       << segment.detail;
  }
  auto reopened = SketchStore::Open(store_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_objects(), 3);

  reopened->reset();
  const std::string command = std::string("rm -rf '") + dir_template + "'";
  ASSERT_EQ(std::system(command.c_str()), 0);
}

TEST(ClusterClientTest, WarmRestartReattachesWithoutResendingGraphs) {
  // The store-backed respawn path end to end: a worker that persisted its
  // registrations is killed and a fresh incarnation warm-loads them; the
  // client's Repair revives its replica via kReattach (no graph bytes on
  // the wire) and answers stay bit-identical.
  char dir_template[] = "/tmp/dcs_warm_restart_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string spec = std::string("unix:") + dir_template + "/w.sock";
  const std::string store_dir = std::string(dir_template) + "/store";

  ClusterWorkerOptions worker_options;
  worker_options.store_dir = store_dir;

  const DirectedGraph graph = TestGraph(16, 60, 81);
  const std::vector<VertexSet> sides = RandomSides(16, 5, 82);
  CutQueryService reference;
  const auto reference_id = reference.RegisterGraph(graph);
  std::vector<CutQueryService::Query> reference_batch;
  for (const VertexSet& side : sides) {
    reference_batch.push_back(CutQueryService::Query{reference_id, side});
  }
  const std::vector<double> expected = reference.AnswerBatch(reference_batch);

  auto serving = std::make_unique<ServingWorker>();
  *serving = StartWorker(worker_options, spec);
  const Endpoint endpoint = serving->worker->endpoint();
  const uint64_t first_token = serving->worker->token();

  ClusterClientOptions options;
  options.replication = 1;
  options.transport = FastTransport();
  ClusterClient client({endpoint}, options);
  auto handle = client.RegisterReplicated(graph);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  // Populate the worker's cache so the drain has something to snapshot.
  ASSERT_TRUE(client.AnswerBatch(*handle, sides).ok());

  // Drain-restart on the same store directory.
  serving->Stop();
  serving = std::make_unique<ServingWorker>();
  *serving = StartWorker(worker_options, spec);
  ASSERT_NE(serving->worker->token(), first_token);

  // The respawn is NOT amnesiac: registrations and warm cache came back
  // from disk before the listener opened.
  EXPECT_EQ(serving->worker->num_registered(), 1);
  EXPECT_EQ(serving->worker->warm_loaded_objects(), 1);
  EXPECT_GT(serving->worker->cache_entries(), 0);

  // The client still holds a stale token, so Repair runs — and must take
  // the reattach fast path rather than re-sending the graph.
  ASSERT_TRUE(client.HealthCheck().ok());
  auto repaired = client.Repair();
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, 1);
  EXPECT_EQ(client.reattached_replicas(), 1);

  auto answer = client.AnswerBatch(*handle, sides);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&(*answer)[i], &expected[i], sizeof(double)), 0)
        << "query " << i;
  }

  serving->Stop();
  const std::string command = std::string("rm -rf '") + dir_template + "'";
  ASSERT_EQ(std::system(command.c_str()), 0);
}

TEST(ClusterClientTest, FailsOverToSurvivingReplicaBitIdentically) {
  ServingWorker worker0 = StartWorker();
  ServingWorker worker1 = StartWorker();
  const DirectedGraph graph = TestGraph(20, 90, 21);
  const std::vector<VertexSet> sides = RandomSides(20, 6, 22);

  CutQueryService reference;
  const auto reference_id = reference.RegisterGraph(graph);
  std::vector<CutQueryService::Query> reference_batch;
  for (const VertexSet& side : sides) {
    reference_batch.push_back(CutQueryService::Query{reference_id, side});
  }
  const std::vector<double> expected = reference.AnswerBatch(reference_batch);

  ClusterClientOptions options;
  options.replication = 2;
  options.transport = FastTransport();
  ClusterClient client(
      {worker0.worker->endpoint(), worker1.worker->endpoint()}, options);
  auto handle = client.RegisterReplicated(graph);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  auto before = client.AnswerBatch(*handle, sides);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Kill the primary replica's worker; the client must fail over and the
  // survivor's answer must still match the oracle exactly.
  worker0.Stop();
  auto after = client.AnswerBatch(*handle, sides);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&(*after)[i], &expected[i], sizeof(double)), 0)
        << "query " << i;
    EXPECT_EQ(std::memcmp(&(*before)[i], &expected[i], sizeof(double)), 0)
        << "query " << i;
  }

  // Both replicas gone: the loss must surface as kUnavailable.
  worker1.Stop();
  auto lost = client.AnswerBatch(*handle, sides);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kUnavailable);
}

TEST(ClusterClientTest, BackpressurePassesThroughWithoutFailover) {
  ClusterWorkerOptions overloaded;
  overloaded.num_shards = 1;
  overloaded.queue_capacity = 1;
  overloaded.execution_delay_ms = 400;
  ServingWorker worker0 = StartWorker(overloaded);
  ServingWorker worker1 = StartWorker();

  const DirectedGraph graph = TestGraph(12, 40, 31);
  ClusterClientOptions options;
  options.replication = 2;
  options.transport = FastTransport();
  ClusterClient client(
      {worker0.worker->endpoint(), worker1.worker->endpoint()}, options);
  auto handle = client.RegisterReplicated(graph);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  // Saturate worker 0 (the primary replica) with two slow direct callers
  // that loop, keeping its single-slot queue persistently full until the
  // main thread has observed a rejection.
  std::atomic<bool> saturating{true};
  auto saturate = [&](int id) {
    RpcRequest query;
    query.kind = RpcKind::kQueryBatch;
    query.object_id = 500 + id;
    query.num_vertices = 4;
    query.sides = RandomSides(4, 1, static_cast<uint64_t>(id));
    while (saturating.load()) {
      worker0.worker->Execute(query);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  std::thread first(saturate, 1);
  std::thread second(saturate, 2);

  // Backpressure is not a loss: the client must hand kResourceExhausted to
  // the caller, NOT shift the load onto worker 1. An OK answer can only
  // mean the saturators were not dispatched yet (the full queue rejects,
  // and kResourceExhausted never triggers failover) — retry until the
  // rejection is observed. A (buggy) client that failed over would keep
  // answering OK from worker 1 and exhaust the retries.
  Status rejected = OkStatus();
  for (int attempt = 0; attempt < 60 && rejected.ok(); ++attempt) {
    auto answer = client.AnswerBatch(
        *handle, RandomSides(graph.num_vertices(), 2, 32));
    if (!answer.ok()) {
      rejected = answer.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  saturating.store(false);
  first.join();
  second.join();
  ASSERT_FALSE(rejected.ok()) << "queue-full rejection never surfaced";
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted)
      << rejected.ToString();
}

TEST(ClusterClientTest, DetectsRespawnedWorkerAndRepairs) {
  char dir_template[] = "/tmp/dcs_transport_test_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string spec = std::string("unix:") + dir_template + "/w.sock";

  auto serving = std::make_unique<ServingWorker>();
  *serving = StartWorker({}, spec);
  const Endpoint endpoint = serving->worker->endpoint();
  const uint64_t first_token = serving->worker->token();

  const DirectedGraph graph = TestGraph(16, 60, 41);
  const std::vector<VertexSet> sides = RandomSides(16, 4, 42);
  CutQueryService reference;
  const auto reference_id = reference.RegisterGraph(graph);
  std::vector<CutQueryService::Query> reference_batch;
  for (const VertexSet& side : sides) {
    reference_batch.push_back(CutQueryService::Query{reference_id, side});
  }
  const std::vector<double> expected = reference.AnswerBatch(reference_batch);

  ClusterClientOptions options;
  options.replication = 1;
  options.transport = FastTransport();
  ClusterClient client({endpoint}, options);
  auto handle = client.RegisterReplicated(graph);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(client.AnswerBatch(*handle, sides).ok());

  // "Respawn": a new worker instance on the same endpoint, with a fresh
  // token and no registrations.
  serving->Stop();
  serving = std::make_unique<ServingWorker>();
  *serving = StartWorker({}, spec);
  ASSERT_NE(serving->worker->token(), first_token);

  // The stale registration must surface as an error — never as another
  // object's (or an empty registry's) answer.
  auto stale = client.AnswerBatch(*handle, sides);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);

  // HealthCheck observes the new incarnation; Repair re-registers from the
  // client's retained graph; answers are bit-identical again.
  ASSERT_TRUE(client.HealthCheck().ok());
  auto repaired = client.Repair();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, 1);
  auto answer = client.AnswerBatch(*handle, sides);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&(*answer)[i], &expected[i], sizeof(double)), 0);
  }

  serving->Stop();
  std::remove((std::string(dir_template) + "/w.sock").c_str());
  ::rmdir(dir_template);
}

TEST(ClusterClientTest, ShardedObjectDegradesWithSurvivorRescale) {
  ServingWorker worker0 = StartWorker();
  ServingWorker worker1 = StartWorker();
  const DirectedGraph graph = TestGraph(18, 80, 51);
  const std::vector<VertexSet> sides = RandomSides(18, 5, 52);

  ClusterClientOptions options;
  options.replication = 1;  // each shard lives on exactly one worker
  options.transport = FastTransport();
  ClusterClient client(
      {worker0.worker->endpoint(), worker1.worker->endpoint()}, options);
  auto handle = client.RegisterSharded(graph, 2);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  auto full = client.AnswerDegraded(*handle, sides);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->total_shards, 2);
  EXPECT_EQ(full->lost_shards, 0);
  EXPECT_DOUBLE_EQ(full->scale, 1.0);
  EXPECT_DOUBLE_EQ(full->epsilon_factor, 1.0);
  for (size_t i = 0; i < sides.size(); ++i) {
    // Edge-disjoint shards: per-shard cuts sum to the whole cut (same
    // additions in a different order, so compare to a tolerance).
    EXPECT_NEAR(full->values[i], graph.CutWeight(sides[i]),
                1e-9 * (1.0 + graph.CutWeight(sides[i])));
  }

  // Lose the worker holding shard 1: survivors rescale by S/(S-L) = 2 and
  // the advertised accuracy widens by sqrt(2).
  worker1.Stop();
  auto degraded = client.AnswerDegraded(*handle, sides);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->total_shards, 2);
  EXPECT_EQ(degraded->lost_shards, 1);
  EXPECT_DOUBLE_EQ(degraded->scale, 2.0);
  EXPECT_DOUBLE_EQ(degraded->epsilon_factor, std::sqrt(2.0));

  worker0.Stop();
  auto lost = client.AnswerDegraded(*handle, sides);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kUnavailable);
}

#ifdef DCS_SERVER_PATH
TEST(WorkerProcessTest, SpawnServeKillReap) {
  char dir_template[] = "/tmp/dcs_worker_proc_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  auto endpoint =
      ParseEndpoint(std::string("unix:") + dir_template + "/w.sock");
  ASSERT_TRUE(endpoint.ok());

  ClusterWorkerOptions options;
  auto spawned = SpawnWorker(DCS_SERVER_PATH, *endpoint, options);
  ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
  ASSERT_TRUE(WaitForWorkerReady(*endpoint, 10000).ok());
  EXPECT_TRUE(WorkerRunning(*spawned));

  // A real query against the real process.
  const DirectedGraph graph = TestGraph(12, 40, 61);
  ClusterClientOptions client_options;
  client_options.replication = 1;
  client_options.transport = FastTransport();
  ClusterClient client({*endpoint}, client_options);
  auto handle = client.RegisterReplicated(graph);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto answer = client.AnswerBatch(*handle, RandomSides(12, 3, 62));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  // SIGKILL: the chaos signal. The corpse must reap cleanly, exactly once.
  ASSERT_TRUE(KillWorker(*spawned, SIGKILL).ok());
  ASSERT_TRUE(ReapWorker(*spawned, /*blocking=*/true).ok());
  EXPECT_FALSE(WorkerRunning(*spawned));
  EXPECT_EQ(ReapWorker(*spawned, /*blocking=*/true).code(),
            StatusCode::kNotFound);

  std::remove((std::string(dir_template) + "/w.sock").c_str());
  ::rmdir(dir_template);
}

TEST(WorkerProcessTest, SigtermDrainsAndExits) {
  char dir_template[] = "/tmp/dcs_worker_term_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  auto endpoint =
      ParseEndpoint(std::string("unix:") + dir_template + "/w.sock");
  ASSERT_TRUE(endpoint.ok());

  // A real SIGTERM against a real store-backed process: the drain must
  // leave every segment sealed on disk before the process exits.
  ClusterWorkerOptions options;
  options.store_dir = std::string(dir_template) + "/store";
  auto spawned = SpawnWorker(DCS_SERVER_PATH, *endpoint, options);
  ASSERT_TRUE(spawned.ok());
  ASSERT_TRUE(WaitForWorkerReady(*endpoint, 10000).ok());

  ClusterClientOptions client_options;
  client_options.replication = 1;
  client_options.transport = FastTransport();
  ClusterClient client({*endpoint}, client_options);
  ASSERT_TRUE(client.RegisterReplicated(TestGraph(10, 30, 91)).ok());

  ASSERT_TRUE(KillWorker(*spawned, SIGTERM).ok());
  // Drain-then-stop exits on its own; blocking reap must not hang.
  ASSERT_TRUE(ReapWorker(*spawned, /*blocking=*/true).ok());

  const auto fsck = FsckSketchStore(options.store_dir);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  ASSERT_FALSE(fsck->segments.empty());
  for (const auto& segment : fsck->segments) {
    EXPECT_EQ(segment.state, "sealed") << segment.file << ": "
                                       << segment.detail;
  }

  const std::string command = std::string("rm -rf '") + dir_template + "'";
  ASSERT_EQ(std::system(command.c_str()), 0);
}
#endif  // DCS_SERVER_PATH

}  // namespace
}  // namespace dcs
