// Communication problems: Index (Lemma 3.1), distributional Gap-Hamming
// (Lemma 4.1), and 2-SUM (Definitions 5.1/5.2, Theorem 5.4).

#include <cmath>

#include "comm/gap_hamming.h"
#include "comm/index_problem.h"
#include "comm/two_sum.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(IndexProblemTest, InstanceShape) {
  Rng rng(1);
  const IndexInstance instance = SampleIndexInstance(64, rng);
  EXPECT_EQ(instance.s.size(), 64u);
  EXPECT_GE(instance.index, 0);
  EXPECT_LT(instance.index, 64);
}

TEST(IndexProblemTest, TrivialProtocolIsCorrectAndTight) {
  Rng rng(2);
  const IndexInstance instance = SampleIndexInstance(128, rng);
  const Message message = IndexTrivialEncode(instance.s);
  EXPECT_EQ(message.bit_count, 128);  // exactly n bits — the Ω(n) bound
  for (int64_t i = 0; i < 128; i += 17) {
    EXPECT_EQ(IndexTrivialDecode(message, i),
              instance.s[static_cast<size_t>(i)]);
  }
}

TEST(GapHammingTest, HammingDistanceBasic) {
  EXPECT_EQ(HammingDistance({1, 0, 1, 0}, {1, 1, 0, 0}), 2);
  EXPECT_EQ(HammingDistance({0, 0}, {0, 0}), 0);
}

TEST(GapHammingTest, InstanceRespectsWeightsAndGap) {
  GapHammingParams params;
  params.num_strings = 5;
  params.string_length = 64;
  params.gap_c = 0.5;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const GapHammingInstance instance =
        SampleGapHammingInstance(params, rng);
    ASSERT_EQ(instance.s.size(), 5u);
    for (const auto& s : instance.s) {
      int weight = 0;
      for (uint8_t b : s) weight += b;
      EXPECT_EQ(weight, 32);
    }
    int t_weight = 0;
    for (uint8_t b : instance.t) t_weight += b;
    EXPECT_EQ(t_weight, 32);
    const int distance =
        HammingDistance(instance.s[static_cast<size_t>(instance.index)],
                        instance.t);
    const double gap = params.gap_c * std::sqrt(64.0);
    if (instance.is_far) {
      EXPECT_GE(distance, 32 + gap);
    } else {
      EXPECT_LE(distance, 32 - gap);
    }
  }
}

TEST(GapHammingTest, BothTailsAppear) {
  GapHammingParams params;
  params.num_strings = 2;
  params.string_length = 36;
  Rng rng(4);
  int far = 0;
  for (int trial = 0; trial < 40; ++trial) {
    far += SampleGapHammingInstance(params, rng).is_far ? 1 : 0;
  }
  EXPECT_GT(far, 5);
  EXPECT_LT(far, 35);
}

TEST(GapHammingTest, TrivialProtocolDecodesTheGap) {
  GapHammingParams params;
  params.num_strings = 4;
  params.string_length = 100;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const GapHammingInstance instance =
        SampleGapHammingInstance(params, rng);
    const Message message = GapHammingTrivialEncode(instance.s);
    EXPECT_EQ(message.bit_count, 4 * 100);
    EXPECT_EQ(GapHammingTrivialDecode(message, params, instance.index,
                                      instance.t),
              instance.is_far);
  }
}

TEST(TwoSumTest, IntersectionAndDisjointness) {
  const std::vector<uint8_t> x = {1, 0, 1, 1, 0};
  const std::vector<uint8_t> y = {1, 1, 0, 1, 0};
  EXPECT_EQ(IntersectionCount(x, y), 2);
  EXPECT_EQ(Disjointness(x, y), 0);
  EXPECT_EQ(Disjointness({1, 0}, {0, 1}), 1);
}

TEST(TwoSumTest, InstanceHonorsThePromise) {
  TwoSumParams params;
  params.num_pairs = 20;
  params.string_length = 36;
  params.alpha = 3;
  params.intersect_fraction = 0.4;
  Rng rng(6);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  int disjoint = 0;
  int intersecting = 0;
  for (int i = 0; i < params.num_pairs; ++i) {
    const int overlap = IntersectionCount(instance.x[static_cast<size_t>(i)],
                                          instance.y[static_cast<size_t>(i)]);
    EXPECT_TRUE(overlap == 0 || overlap == params.alpha)
        << "pair " << i << " has INT " << overlap;
    if (overlap == 0) {
      ++disjoint;
    } else {
      ++intersecting;
    }
  }
  EXPECT_EQ(disjoint, instance.disjoint_count);
  EXPECT_GE(intersecting, params.num_pairs / 1000 + 1);
  EXPECT_EQ(intersecting, 8);  // 0.4 × 20
}

TEST(TwoSumTest, AlphaOneInstances) {
  TwoSumParams params;
  params.num_pairs = 10;
  params.string_length = 16;
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(7);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  for (int i = 0; i < params.num_pairs; ++i) {
    EXPECT_LE(IntersectionCount(instance.x[static_cast<size_t>(i)],
                                instance.y[static_cast<size_t>(i)]),
              1);
  }
}

TEST(TwoSumTest, ConcatenationReductionScalesIntersections) {
  // Theorem 5.4: expanding 2-SUM(t, L, 1) by α copies gives 2-SUM(t, αL, α)
  // with the same DISJ values.
  TwoSumParams params;
  params.num_pairs = 8;
  params.string_length = 16;
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(8);
  const TwoSumInstance base = SampleTwoSumInstance(params, rng);
  const TwoSumInstance expanded = ConcatenateAlphaCopies(base, 4);
  EXPECT_EQ(expanded.params.string_length, 64);
  EXPECT_EQ(expanded.disjoint_count, base.disjoint_count);
  for (int i = 0; i < params.num_pairs; ++i) {
    const int base_int = IntersectionCount(base.x[static_cast<size_t>(i)],
                                           base.y[static_cast<size_t>(i)]);
    const int expanded_int =
        IntersectionCount(expanded.x[static_cast<size_t>(i)],
                          expanded.y[static_cast<size_t>(i)]);
    EXPECT_EQ(expanded_int, 4 * base_int);
  }
}

TEST(TwoSumTest, TrivialProtocolIsExactAtFullCost) {
  TwoSumParams params;
  params.num_pairs = 12;
  params.string_length = 40;
  params.alpha = 2;
  params.intersect_fraction = 0.4;
  Rng rng(9);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  const Message message = TwoSumTrivialEncode(instance.x);
  EXPECT_EQ(message.bit_count, 12 * 40);  // ships every bit
  EXPECT_EQ(TwoSumTrivialDecode(message, params, instance.y),
            instance.disjoint_count);
}

TEST(TwoSumTest, ConcatenateStringsFlattens) {
  const std::vector<std::vector<uint8_t>> strings = {{1, 0}, {0, 1, 1}};
  EXPECT_EQ(ConcatenateStrings(strings),
            (std::vector<uint8_t>{1, 0, 0, 1, 1}));
}

}  // namespace
}  // namespace dcs
