// ParallelFor/ThreadPool: every index runs exactly once for any thread
// count, the serial fast path is exact, and pools are reusable.

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    for (const int64_t count : {0, 1, 2, 7, 100, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
      for (auto& h : hits) h.store(0);
      ParallelFor(threads, count, [&hits](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      });
      for (int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int64_t> sum{0};
  ParallelFor(16, 3, [&sum](int64_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  // The determinism contract of the trial runners: per-index seeds, results
  // written into per-index slots, identical output for every thread count.
  auto run = [](int threads) {
    std::vector<uint64_t> slots(257);
    ParallelFor(threads, static_cast<int64_t>(slots.size()), [&](int64_t i) {
      Rng rng(uint64_t{9000} ^ static_cast<uint64_t>(i));
      slots[static_cast<size_t>(i)] = rng.Next();
    });
    return slots;
  };
  const std::vector<uint64_t> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(5), serial);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<int64_t> values(100, 0);
  for (int round = 1; round <= 3; ++round) {
    pool.ParallelFor(static_cast<int64_t>(values.size()),
                     [&values, round](int64_t i) {
                       values[static_cast<size_t>(i)] = round * i;
                     });
    const int64_t sum = std::accumulate(values.begin(), values.end(),
                                        int64_t{0});
    EXPECT_EQ(sum, round * 99 * 100 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, StragglerStressBackToBackGrowingLoops) {
  // Regression stress for a straggler race: a worker still draining loop L
  // while the caller installs loop L+1 must not observe the new loop's
  // body/count (it could then run new indices twice or over-run the old
  // bound). Back-to-back loops with no pause and counts that alternate
  // between tiny and growing maximize the window; run it under
  // -DDCS_ENABLE_SANITIZERS=thread for the full data-race check
  // (scripts/run_sanitizers.sh).
  ThreadPool pool(8);
  constexpr int64_t kMaxCount = 2048;
  std::vector<std::atomic<int>> hits(kMaxCount);
  int64_t grown = 1;
  for (int round = 0; round < 600; ++round) {
    const int64_t count = (round % 2 == 0) ? grown : 1 + round % 3;
    for (int64_t i = 0; i < count; ++i) {
      hits[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    }
    pool.ParallelFor(count, [&hits](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "round=" << round << " count=" << count << " i=" << i;
    }
    if (round % 2 == 0) grown = grown >= kMaxCount / 2 ? 1 : grown * 2 + 1;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int64_t sum = 0;  // unsynchronized on purpose: must run on the caller
  pool.ParallelFor(50, [&sum](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(ThreadPoolTest, ShutdownDegradesToSerialAndIsIdempotent) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(64, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  // Post-shutdown loops still run every index, serially on the caller —
  // the drain path must never drop late-arriving work.
  int64_t serial_sum = 0;  // unsynchronized on purpose
  pool.ParallelFor(64, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
    serial_sum += i;
  });
  EXPECT_EQ(serial_sum, 63 * 64 / 2);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 2) << "i=" << i;
  }
}

TEST(ThreadPoolTest, ShutdownFromAnotherThreadWaitsForInFlightLoop) {
  // The SIGTERM path: a signal-driven shutdown arrives while a loop is
  // mid-flight on another thread. Shutdown must wait for the epoch to
  // drain — every index still runs exactly once — then join the workers.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h.store(0);
  std::atomic<bool> loop_started{false};
  std::thread stopper([&] {
    while (!loop_started.load()) std::this_thread::yield();
    pool.Shutdown();
  });
  pool.ParallelFor(256, [&](int64_t i) {
    loop_started.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  stopper.join();
  for (int64_t i = 0; i < 256; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "i=" << i;
  }
}

}  // namespace
}  // namespace dcs
