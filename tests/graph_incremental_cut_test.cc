// Golden equivalence of the cut fast paths against brute force:
// IncrementalCutOracle under randomized flip sequences vs a fresh O(m)
// CutWeight scan, and the volume-bounded CutWeight overload vs the plain
// edge scan.

#include "graph/incremental_cut_oracle.h"

#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

// A random directed multigraph with dyadic weights (exact in double, so
// equality comparisons below are legitimate).
DirectedGraph RandomGraph(int num_vertices, int num_edges, Rng& rng) {
  DirectedGraph g(num_vertices);
  for (int e = 0; e < num_edges; ++e) {
    const int src = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(num_vertices)));
    int dst = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(num_vertices - 1)));
    if (dst >= src) ++dst;  // no self-loops
    const double weight =
        static_cast<double>(rng.UniformInRange(0, 31)) / 4.0;
    g.AddEdge(src, dst, weight);
  }
  return g;
}

VertexSet RandomSide(int num_vertices, Rng& rng) {
  return rng.RandomBinaryString(num_vertices);
}

TEST(IncrementalCutOracleTest, MatchesBruteForceUnderRandomFlips) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.UniformInRange(2, 24));
    const int m = static_cast<int>(rng.UniformInRange(0, 4 * n));
    const DirectedGraph g = RandomGraph(n, m, rng);
    VertexSet side = RandomSide(n, rng);
    IncrementalCutOracle oracle(g, side);
    EXPECT_EQ(oracle.value(), g.CutWeight(side));
    for (int step = 0; step < 100; ++step) {
      const VertexId v =
          static_cast<VertexId>(rng.UniformInt(static_cast<uint64_t>(n)));
      side[static_cast<size_t>(v)] ^= 1;
      oracle.Flip(v);
      ASSERT_EQ(oracle.value(), g.CutWeight(side))
          << "round " << round << " step " << step << " flip " << v;
    }
  }
}

TEST(IncrementalCutOracleTest, FlipIsAnInvolution) {
  Rng rng(13);
  const DirectedGraph g = RandomGraph(10, 30, rng);
  const VertexSet side = RandomSide(10, rng);
  IncrementalCutOracle oracle(g, side);
  const double before = oracle.value();
  oracle.Flip(4);
  oracle.Flip(4);
  EXPECT_EQ(oracle.value(), before);
  EXPECT_EQ(oracle.side(), VertexSet(side.begin(), side.end()));
}

TEST(IncrementalCutOracleTest, AcceptsNonNormalizedSideBytes) {
  // VertexSet membership is "byte != 0"; the oracle must not be confused
  // by bytes other than 0/1.
  DirectedGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 4.0);
  VertexSet side = {0, 7, 0};  // S = {1}
  IncrementalCutOracle oracle(g, side);
  EXPECT_EQ(oracle.value(), 4.0);
  oracle.Flip(1);  // S = {}
  EXPECT_EQ(oracle.value(), 0.0);
  oracle.Flip(0);  // S = {0}
  EXPECT_EQ(oracle.value(), 2.0);
}

TEST(IncrementalCutOracleTest, ResetReplacesTheSide) {
  Rng rng(17);
  const DirectedGraph g = RandomGraph(12, 40, rng);
  IncrementalCutOracle oracle(g, RandomSide(12, rng));
  const VertexSet fresh = RandomSide(12, rng);
  oracle.Reset(fresh);
  EXPECT_EQ(oracle.value(), g.CutWeight(fresh));
}

TEST(CutWeightOverloadTest, VolumeBoundedMatchesEdgeScan) {
  Rng rng(19);
  for (int round = 0; round < 30; ++round) {
    const int n = static_cast<int>(rng.UniformInRange(2, 20));
    const int m = static_cast<int>(rng.UniformInRange(0, 5 * n));
    const DirectedGraph g = RandomGraph(n, m, rng);
    const DegreeIndex index = g.BuildDegreeIndex();
    for (int trial = 0; trial < 10; ++trial) {
      const VertexSet side = RandomSide(n, rng);
      ASSERT_EQ(g.CutWeight(side, index), g.CutWeight(side))
          << "round " << round << " trial " << trial;
    }
  }
}

TEST(CutWeightOverloadTest, EmptyAndFullSidesShortCircuitToZero) {
  Rng rng(23);
  const DirectedGraph g = RandomGraph(8, 20, rng);
  const DegreeIndex index = g.BuildDegreeIndex();
  EXPECT_EQ(g.CutWeight(VertexSet(8, 0), index), 0.0);
  EXPECT_EQ(g.CutWeight(VertexSet(8, 1), index), 0.0);
}

TEST(CutQueryHelperTest, ComplementAndSetSize) {
  const VertexSet side = {0, 1, 5, 0, 1};
  EXPECT_EQ(SetSize(side), 3);
  const VertexSet complement = ComplementSet(side);
  ASSERT_EQ(complement.size(), side.size());
  EXPECT_EQ(complement, (VertexSet{1, 0, 0, 1, 0}));
  EXPECT_EQ(SetSize(complement), 2);
}

}  // namespace
}  // namespace dcs
