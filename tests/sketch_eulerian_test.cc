// Eulerian cycle decomposition and the degree-preserving sparsifier
// (the β = 1 extreme of the paper's balanced family).

#include "sketch/eulerian_sparsifier.h"

#include <cmath>

#include "graph/balance.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "sketch/directed_sketches.h"
#include "util/random.h"
#include "util/stats.h"

namespace dcs {
namespace {

TEST(CycleDecompositionTest, SingleCycleGraph) {
  DirectedGraph g(4);
  for (int v = 0; v < 4; ++v) g.AddEdge(v, (v + 1) % 4, 2.5);
  const std::vector<WeightedCycle> cycles = DecomposeIntoCycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].vertices.size(), 4u);
  EXPECT_DOUBLE_EQ(cycles[0].weight, 2.5);
}

TEST(CycleDecompositionTest, TwoCyclesSharingAVertex) {
  DirectedGraph g(5);
  // Cycle A: 0→1→2→0; cycle B: 0→3→4→0.
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 0, 1.0);
  g.AddEdge(0, 3, 1.0);
  g.AddEdge(3, 4, 1.0);
  g.AddEdge(4, 0, 1.0);
  const std::vector<WeightedCycle> cycles = DecomposeIntoCycles(g);
  EXPECT_EQ(cycles.size(), 2u);
  double total = 0;
  for (const WeightedCycle& c : cycles) {
    total += c.weight * static_cast<double>(c.vertices.size());
  }
  EXPECT_DOUBLE_EQ(total, g.TotalWeight());
}

TEST(CycleDecompositionTest, WeightedCycleSplit) {
  // A 2-cycle with asymmetric multiplicities decomposes into cycles whose
  // total reproduces the weights exactly.
  DirectedGraph g(3);
  g.AddEdge(0, 1, 3.0);
  g.AddEdge(1, 0, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 0, 2.0);
  g.AddEdge(0, 1, 0.0);  // zero-weight edge must be ignored
  const std::vector<WeightedCycle> cycles = DecomposeIntoCycles(g);
  const DirectedGraph rebuilt = GraphFromCycles(3, cycles);
  for (int v = 0; v < 3; ++v) {
    EXPECT_NEAR(rebuilt.OutDegree(v), g.OutDegree(v), 1e-9);
    EXPECT_NEAR(rebuilt.InDegree(v), g.InDegree(v), 1e-9);
  }
  // Cut values are reproduced exactly, not just degrees.
  for (int v = 0; v < 3; ++v) {
    const VertexSet side = MakeVertexSet(3, {v});
    EXPECT_NEAR(rebuilt.CutWeight(side), g.CutWeight(side), 1e-9);
  }
}

TEST(CycleDecompositionTest, RandomEulerianReconstructsExactly) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const DirectedGraph g = RandomEulerianDigraph(12, 20, 6, rng);
    const std::vector<WeightedCycle> cycles = DecomposeIntoCycles(g);
    const DirectedGraph rebuilt = GraphFromCycles(12, cycles);
    Rng cut_rng(seed + 50);
    for (int trial = 0; trial < 20; ++trial) {
      VertexSet side(12);
      for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
      if (!IsProperCutSide(side)) continue;
      EXPECT_NEAR(rebuilt.CutWeight(side), g.CutWeight(side), 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(CycleDecompositionDeathTest, RejectsNonEulerian) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);  // imbalance at 0 and 2
  EXPECT_DEATH(DecomposeIntoCycles(g), "CHECK");
}

TEST(EulerianSparsifierTest, OutputIsExactlyEulerian) {
  Rng rng(7);
  const DirectedGraph g = RandomEulerianDigraph(16, 40, 8, rng);
  Rng sparsify_rng(8);
  const DirectedGraph sparse = SparsifyEulerian(g, 0.4, sparsify_rng);
  for (double imbalance : VertexImbalances(sparse)) {
    EXPECT_NEAR(imbalance, 0.0, 1e-9);
  }
}

TEST(EulerianSparsifierTest, OutputCutsAreOneBalanced) {
  Rng rng(9);
  const DirectedGraph g = RandomEulerianDigraph(10, 30, 5, rng);
  Rng sparsify_rng(10);
  const DirectedGraph sparse = SparsifyEulerian(g, 0.5, sparsify_rng);
  // Every cut of an Eulerian graph has equal weight in both directions.
  Rng cut_rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    VertexSet side(10);
    for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    EXPECT_NEAR(sparse.CutWeight(side),
                sparse.CutWeight(ComplementSet(side)), 1e-9);
  }
}

TEST(EulerianSparsifierTest, CutsAreUnbiased) {
  Rng rng(12);
  const DirectedGraph g = RandomEulerianDigraph(12, 60, 6, rng);
  const VertexSet side = MakeVertexSet(12, {0, 2, 4, 6});
  const double exact = g.CutWeight(side);
  std::vector<double> estimates;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng sparsify_rng(seed);
    estimates.push_back(
        SparsifyEulerian(g, 0.3, sparsify_rng).CutWeight(side));
  }
  EXPECT_NEAR(Mean(estimates), exact, 0.08 * exact + 0.2);
}

TEST(EulerianSparsifierTest, KeepProbabilityOneIsLossless) {
  Rng rng(13);
  const DirectedGraph g = RandomEulerianDigraph(8, 15, 4, rng);
  Rng sparsify_rng(14);
  const DirectedGraph sparse = SparsifyEulerian(g, 1.0, sparsify_rng);
  for (int v = 0; v < 8; ++v) {
    const VertexSet side = MakeVertexSet(8, {v});
    EXPECT_NEAR(sparse.CutWeight(side), g.CutWeight(side), 1e-9);
  }
}

TEST(EulerianSparsifierTest, FewerEdgesAtLowKeepProbability) {
  Rng rng(15);
  const DirectedGraph g = RandomEulerianDigraph(20, 120, 8, rng);
  Rng sparsify_rng(16);
  const DirectedGraph sparse = SparsifyEulerian(g, 0.2, sparsify_rng);
  EXPECT_LT(sparse.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace dcs
