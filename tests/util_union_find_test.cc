#include "util/union_find.h"

#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.Find(v), v);
    EXPECT_EQ(uf.SetSize(v), 1);
  }
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionMergesAndReports) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already joined
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(3), 4);
  EXPECT_EQ(uf.SetSize(5), 1);
}

TEST(UnionFindTest, UnionIntoKeepsRequestedRoot) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.UnionInto(/*child=*/0, /*parent=*/1));
  EXPECT_EQ(uf.Find(0), 1);
  EXPECT_TRUE(uf.UnionInto(/*child=*/2, /*parent=*/0));
  // 2 joins the set whose representative is 1.
  EXPECT_EQ(uf.Find(2), 1);
  EXPECT_FALSE(uf.UnionInto(2, 1));
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(4);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Reset();
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(uf.Find(v), v);
    EXPECT_EQ(uf.SetSize(v), 1);
  }
}

TEST(UnionFindTest, LongChainCompresses) {
  UnionFind uf(100);
  for (int v = 0; v + 1 < 100; ++v) uf.UnionInto(v, v + 1);
  EXPECT_EQ(uf.Find(0), 99);
  EXPECT_EQ(uf.SetSize(0), 100);
}

TEST(UnionFindDeathTest, OutOfRangeChecks) {
  UnionFind uf(3);
  EXPECT_DEATH(uf.Find(3), "CHECK");
  EXPECT_DEATH(uf.Find(-1), "CHECK");
}

}  // namespace
}  // namespace dcs
