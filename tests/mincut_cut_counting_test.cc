// Karger's cut-counting theorem and the coverage of randomized
// near-min-cut enumeration (the distributed pipeline's foundation).

#include "mincut/cut_counting.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(CutCountingTest, CycleHasChooseTwoMinimumCuts) {
  // C_n: every min cut (value 2) removes two edges; there are C(n,2)
  // such partitions.
  for (int n : {5, 8, 12}) {
    const UndirectedGraph g = CycleGraph(n, 1.0);
    const CutCountResult result = CountNearMinimumCutsExhaustive(g, 1.0);
    EXPECT_DOUBLE_EQ(result.min_value, 2.0);
    EXPECT_EQ(result.cuts_at_minimum, n * (n - 1) / 2) << "n=" << n;
  }
}

TEST(CutCountingTest, CompleteGraphMinCutsAreSingletons) {
  const UndirectedGraph g = CompleteGraph(8, 1.0);
  const CutCountResult result = CountNearMinimumCutsExhaustive(g, 1.0);
  EXPECT_DOUBLE_EQ(result.min_value, 7.0);
  EXPECT_EQ(result.cuts_at_minimum, 8);
}

TEST(CutCountingTest, DumbbellHasUniqueMinCut) {
  const UndirectedGraph g = DumbbellGraph(6, 1);
  const CutCountResult result = CountNearMinimumCutsExhaustive(g, 1.0);
  EXPECT_DOUBLE_EQ(result.min_value, 1.0);
  EXPECT_EQ(result.cuts_at_minimum, 1);
}

TEST(CutCountingTest, KargerBoundHolds) {
  // n^{2a} dominates the exhaustive count on every workload.
  Rng rng(1);
  for (double alpha : {1.0, 1.5, 2.0}) {
    for (int seed = 0; seed < 3; ++seed) {
      Rng gen_rng(static_cast<uint64_t>(seed));
      const UndirectedGraph g =
          RandomUndirectedGraph(14, 0.3, 1.0, 1.0, true, gen_rng);
      const CutCountResult result =
          CountNearMinimumCutsExhaustive(g, alpha);
      EXPECT_LE(static_cast<double>(result.cuts_within_alpha),
                result.karger_bound)
          << "alpha=" << alpha << " seed=" << seed;
    }
  }
}

TEST(CutCountingTest, AlphaWindowIsMonotone) {
  Rng gen_rng(7);
  const UndirectedGraph g =
      RandomUndirectedGraph(12, 0.4, 1.0, 1.0, true, gen_rng);
  const CutCountResult narrow = CountNearMinimumCutsExhaustive(g, 1.0);
  const CutCountResult wide = CountNearMinimumCutsExhaustive(g, 2.0);
  EXPECT_LE(narrow.cuts_within_alpha, wide.cuts_within_alpha);
  EXPECT_GE(narrow.cuts_within_alpha, narrow.cuts_at_minimum);
}

TEST(CutCountingTest, KargerEnumerationCoversCycleMinCuts) {
  // C_8 has 28 min-cut partitions; enough repetitions find them all.
  const UndirectedGraph g = CycleGraph(8, 1.0);
  Rng rng(3);
  const double coverage = KargerEnumerationCoverage(g, 1.0, rng, 80);
  EXPECT_DOUBLE_EQ(coverage, 1.0);
}

TEST(CutCountingTest, CoverageGrowsWithRepetitions) {
  Rng gen_rng(11);
  const UndirectedGraph g = CycleGraph(10, 1.0);
  Rng r1(5), r2(5);
  const double few = KargerEnumerationCoverage(g, 1.0, r1, 2);
  const double many = KargerEnumerationCoverage(g, 1.0, r2, 60);
  EXPECT_LE(few, many + 1e-9);
  EXPECT_GE(many, 0.9);
}

}  // namespace
}  // namespace dcs
