// Tests for the metrics registry (util/metrics.h) and its JSON surface.
//
// The registry is process-global, so every test works on snapshot diffs
// and test-unique metric names rather than absolute registry state.

#include "util/metrics.h"

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

using metrics::Counter;
using metrics::Distribution;
using metrics::DistributionStats;
using metrics::MetricsSnapshot;
using metrics::Registry;

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add(5);
  counter.Increment();
  counter.Add(-2);
  EXPECT_EQ(counter.value(), 4);
}

TEST(CounterTest, ExactUnderParallelFor) {
  Counter counter;
  Distribution distribution;
  constexpr int64_t kIterations = 20000;
  ParallelFor(8, kIterations, [&](int64_t i) {
    counter.Add(1);
    distribution.Record(i % 7);
  });
  EXPECT_EQ(counter.value(), kIterations);
  const DistributionStats stats = distribution.stats();
  EXPECT_EQ(stats.count, kIterations);
  int64_t expected_sum = 0;
  for (int64_t i = 0; i < kIterations; ++i) expected_sum += i % 7;
  EXPECT_EQ(stats.sum, expected_sum);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 6);
}

TEST(DistributionTest, StatsTrackExtremaAndMean) {
  Distribution distribution;
  for (const int64_t v : {1, 2, 4, 8, 1024}) distribution.Record(v);
  const DistributionStats stats = distribution.stats();
  EXPECT_EQ(stats.count, 5);
  EXPECT_EQ(stats.sum, 1039);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 1024);
  EXPECT_DOUBLE_EQ(stats.mean(), 1039.0 / 5.0);
}

TEST(DistributionTest, EmptyStatsAreZero) {
  Distribution distribution;
  const DistributionStats stats = distribution.stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.ApproxPercentile(0.5), 0);
}

TEST(DistributionTest, PercentilesAreBucketAccurate) {
  Distribution distribution;
  // 90 samples of 10, 10 samples of 1000.
  for (int i = 0; i < 90; ++i) distribution.Record(10);
  for (int i = 0; i < 10; ++i) distribution.Record(1000);
  const DistributionStats stats = distribution.stats();
  // The log2 histogram is exact up to a factor of 2 and clamped to
  // [min, max]: p50 must land in [10, 20), p99 in [1000, 2000).
  const int64_t p50 = stats.ApproxPercentile(0.50);
  EXPECT_GE(p50, 10);
  EXPECT_LT(p50, 20);
  const int64_t p99 = stats.ApproxPercentile(0.99);
  EXPECT_GE(p99, 1000);
  EXPECT_LT(p99, 2000);
  // Extreme percentiles stay bucket-accurate and clamped to [min, max].
  const int64_t p0 = stats.ApproxPercentile(0.0);
  EXPECT_GE(p0, 10);
  EXPECT_LT(p0, 20);
  EXPECT_EQ(stats.ApproxPercentile(1.0), 1000);
}

TEST(RegistryTest, ReturnsStableReferences) {
  Counter& a = Registry::Get().GetCounter("test.registry.stable");
  Counter& b = Registry::Get().GetCounter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  Distribution& c = Registry::Get().GetDistribution("test.registry.stable");
  Distribution& d = Registry::Get().GetDistribution("test.registry.stable");
  EXPECT_EQ(&c, &d);
}

TEST(RegistryTest, ConcurrentRegistrationAndUse) {
  // Many threads hammering the same small name set: lookups serialize on
  // the mutex, updates stripe; totals must come out exact.
  constexpr int64_t kIterations = 4000;
  ParallelFor(8, kIterations, [&](int64_t i) {
    const std::string name =
        "test.registry.concurrent." + std::to_string(i % 3);
    Registry::Get().GetCounter(name).Add(1);
  });
  int64_t total = 0;
  for (int j = 0; j < 3; ++j) {
    total += Registry::Get()
                 .GetCounter("test.registry.concurrent." + std::to_string(j))
                 .value();
  }
  EXPECT_EQ(total, kIterations);
}

TEST(SnapshotTest, DiffSubtractsCountersAndDistributions) {
  Registry::Get().GetCounter("test.snapshot.counter").Add(10);
  Registry::Get().GetDistribution("test.snapshot.dist").Record(100);
  const MetricsSnapshot before = Registry::Get().Snapshot();
  Registry::Get().GetCounter("test.snapshot.counter").Add(7);
  Registry::Get().GetDistribution("test.snapshot.dist").Record(200);
  Registry::Get().GetDistribution("test.snapshot.dist").Record(300);
  const MetricsSnapshot after = Registry::Get().Snapshot();
  const MetricsSnapshot diff = after.DiffSince(before);
  EXPECT_EQ(diff.counters.at("test.snapshot.counter"), 7);
  EXPECT_EQ(diff.distributions.at("test.snapshot.dist").count, 2);
  EXPECT_EQ(diff.distributions.at("test.snapshot.dist").sum, 500);
}

TEST(SnapshotTest, DiffCountsMetricsAbsentFromEarlierFromZero) {
  const MetricsSnapshot before = Registry::Get().Snapshot();
  Registry::Get().GetCounter("test.snapshot.fresh").Add(3);
  const MetricsSnapshot after = Registry::Get().Snapshot();
  const MetricsSnapshot diff = after.DiffSince(before);
  EXPECT_EQ(diff.counters.at("test.snapshot.fresh"), 3);
}

TEST(SnapshotTest, JsonRoundTripPreservesValues) {
  Registry::Get().GetCounter("test.json.counter").Add(42);
  Registry::Get().GetDistribution("test.json.dist").Record(17);
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  const auto parsed = ParseJson(snapshot.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->Find("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->int_value(),
            snapshot.counters.at("test.json.counter"));
  const JsonValue* distributions = parsed->Find("distributions");
  ASSERT_NE(distributions, nullptr);
  const JsonValue* dist = distributions->Find("test.json.dist");
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->Find("count")->int_value(),
            snapshot.distributions.at("test.json.dist").count);
  EXPECT_EQ(dist->Find("sum")->int_value(),
            snapshot.distributions.at("test.json.dist").sum);
  // Serialization is byte-deterministic for a given snapshot.
  EXPECT_EQ(snapshot.ToJsonString(), snapshot.ToJsonString());
}

TEST(ScopedTimerTest, RecordsOneNonNegativeSample) {
  Distribution distribution;
  { metrics::ScopedTimer timer(distribution); }
  const DistributionStats stats = distribution.stats();
  EXPECT_EQ(stats.count, 1);
  EXPECT_GE(stats.min, 0);
}

int64_t g_side_effect_calls = 0;
int64_t SideEffect() {
  ++g_side_effect_calls;
  return 1;
}

#if DCS_METRICS_ENABLED

TEST(MacroTest, MacrosRegisterAndCount) {
  const MetricsSnapshot before = Registry::Get().Snapshot();
  DCS_METRIC_INC("test.macro.inc");
  DCS_METRIC_INC("test.macro.inc");
  DCS_METRIC_ADD("test.macro.add", 5);
  DCS_METRIC_RECORD("test.macro.record", 9);
  { DCS_METRIC_TIMER("test.macro.timer"); }
  const MetricsSnapshot diff = Registry::Get().Snapshot().DiffSince(before);
  EXPECT_EQ(diff.counters.at("test.macro.inc"), 2);
  EXPECT_EQ(diff.counters.at("test.macro.add"), 5);
  EXPECT_EQ(diff.distributions.at("test.macro.record").count, 1);
  EXPECT_EQ(diff.distributions.at("test.macro.record").sum, 9);
  EXPECT_EQ(diff.distributions.at("test.macro.timer").count, 1);
}

TEST(MacroTest, ArgumentsEvaluatedOnceWhenEnabled) {
  g_side_effect_calls = 0;
  DCS_METRIC_ADD("test.macro.eval", SideEffect());
  EXPECT_EQ(g_side_effect_calls, 1);
}

#else  // !DCS_METRICS_ENABLED

TEST(MacroTest, MacrosAreNoOpsWhenCompiledOut) {
  DCS_METRIC_INC("test.macro.off.inc");
  DCS_METRIC_ADD("test.macro.off.add", 5);
  DCS_METRIC_RECORD("test.macro.off.record", 9);
  DCS_METRIC_TIMER("test.macro.off.timer");
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  // Nothing registered: the macros expand to unevaluated no-ops, so the
  // names never reach the registry (no allocation, no atomics).
  EXPECT_EQ(snapshot.counters.count("test.macro.off.inc"), 0u);
  EXPECT_EQ(snapshot.counters.count("test.macro.off.add"), 0u);
  EXPECT_EQ(snapshot.distributions.count("test.macro.off.record"), 0u);
  EXPECT_EQ(snapshot.distributions.count("test.macro.off.timer"), 0u);
}

TEST(MacroTest, ArgumentsNotEvaluatedWhenCompiledOut) {
  g_side_effect_calls = 0;
  DCS_METRIC_ADD("test.macro.off.eval", SideEffect());
  DCS_METRIC_RECORD("test.macro.off.eval2", SideEffect());
  EXPECT_EQ(g_side_effect_calls, 0);
}

TEST(MacroTest, InstrumentedLibraryCodeRegistersNothing) {
  // Drive an instrumented path (ParallelFor carries threadpool.* macros)
  // and check the registry stays empty of library metrics.
  int64_t sum = 0;
  ParallelFor(1, 16, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 120);
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  EXPECT_EQ(snapshot.counters.count("threadpool.loop.started"), 0u);
  EXPECT_EQ(snapshot.distributions.count("threadpool.loop.tasks"), 0u);
}

#endif  // DCS_METRICS_ENABLED

// util/json is the serialization surface of the metrics snapshot; its
// contract (determinism, hostile-input handling) is covered here.

TEST(JsonTest, DumpIsDeterministicAndCompact) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("b", 1);
  root.Set("a", 2);
  root.Set("c", JsonValue::MakeArray());
  // Insertion order is preserved; Set on an existing key replaces in place.
  root.Set("b", 3);
  EXPECT_EQ(root.Dump(), "{\"b\":3,\"a\":2,\"c\":[]}");
}

TEST(JsonTest, NumbersRoundTrip) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("int", int64_t{1} << 53);
  root.Set("neg", -17);
  root.Set("pi", 3.25);
  const auto parsed = ParseJson(root.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("int")->int_value(), int64_t{1} << 53);
  EXPECT_EQ(parsed->Find("neg")->int_value(), -17);
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->number_value(), 3.25);
}

TEST(JsonTest, StringsEscapeAndRoundTrip) {
  JsonValue value(std::string("tab\there \"quoted\" \n and \x01"));
  const auto parsed = ParseJson(value.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), value.string_value());
}

TEST(JsonTest, MalformedInputIsInvalidArgumentNotAbort) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "nul"}) {
    const auto parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "input: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonTest, DepthCapRejectsDeepNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  const auto parsed = ParseJson(deep);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dcs
