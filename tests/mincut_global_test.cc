// Cross-validation of the global min-cut algorithms: Stoer–Wagner
// (deterministic ground truth), Karger / Karger–Stein, near-min-cut
// enumeration, and the directed global min cut.

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/directed_mincut.h"
#include "mincut/karger.h"
#include "mincut/stoer_wagner.h"

namespace dcs {
namespace {

TEST(StoerWagnerTest, TwoVertices) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 4.0);
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 4.0);
  EXPECT_EQ(SetSize(cut.side), 1);
}

TEST(StoerWagnerTest, PathGraphCutsWeakestEdge) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 3.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 2.0);
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  EXPECT_DOUBLE_EQ(g.CutWeight(cut.side), 1.0);
}

TEST(StoerWagnerTest, WeightedClassicInstance) {
  // Stoer & Wagner's original 8-vertex example, min cut value 4.
  UndirectedGraph g(8);
  const int edges[][3] = {{0, 1, 2}, {0, 4, 3}, {1, 2, 3}, {1, 4, 2},
                          {1, 5, 2}, {2, 3, 4}, {2, 6, 2}, {3, 6, 2},
                          {3, 7, 2}, {4, 5, 3}, {5, 6, 1}, {6, 7, 3}};
  for (const auto& e : edges) g.AddEdge(e[0], e[1], e[2]);
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 4.0);
  EXPECT_DOUBLE_EQ(g.CutWeight(cut.side), 4.0);
}

TEST(StoerWagnerTest, DumbbellFamily) {
  for (int bridges : {1, 3, 5}) {
    const UndirectedGraph g = DumbbellGraph(7, bridges);
    EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value,
                     static_cast<double>(bridges));
  }
}

TEST(StoerWagnerTest, DisconnectedGraphHasZeroCut) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 0.0);
}

TEST(KargerTest, ContractOnceReturnsAValidCut) {
  Rng rng(21);
  const UndirectedGraph g = DumbbellGraph(5, 2);
  const GlobalMinCut cut = KargerContractOnce(g, rng);
  EXPECT_TRUE(IsProperCutSide(cut.side));
  EXPECT_NEAR(cut.value, g.CutWeight(cut.side), 1e-9);
}

TEST(KargerTest, KargerSteinFindsDumbbellCut) {
  Rng rng(22);
  const UndirectedGraph g = DumbbellGraph(8, 2);
  const GlobalMinCut cut = KargerSteinMinCut(g, rng, 10);
  EXPECT_DOUBLE_EQ(cut.value, 2.0);
}

TEST(KargerTest, MatchesStoerWagnerOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng gen_rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(24, 0.25, 1.0, 2.0, true, gen_rng);
    Rng ks_rng(seed + 100);
    const double exact = StoerWagnerMinCut(g).value;
    const double randomized = KargerSteinMinCut(g, ks_rng, 12).value;
    EXPECT_NEAR(randomized, exact, 1e-9) << "seed=" << seed;
  }
}

TEST(KargerTest, EnumerationContainsTheMinimumCut) {
  Rng rng(23);
  const UndirectedGraph g = DumbbellGraph(6, 2);
  const std::vector<GlobalMinCut> cuts =
      EnumerateNearMinimumCuts(g, 1.5, rng, 20);
  ASSERT_FALSE(cuts.empty());
  EXPECT_DOUBLE_EQ(cuts.front().value, 2.0);
  // Values are sorted and within the alpha window.
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_GE(cuts[i].value, cuts[i - 1].value);
    EXPECT_LE(cuts[i].value, 1.5 * cuts.front().value + 1e-9);
  }
}

TEST(KargerTest, EnumerationDeduplicatesSides) {
  Rng rng(24);
  const UndirectedGraph g = CycleGraph(6, 1.0);
  // A 6-cycle has C(6,2)/... every pair of non-adjacent edge removals gives
  // a cut of value 2; enumeration should find several distinct ones without
  // repeats.
  const std::vector<GlobalMinCut> cuts =
      EnumerateNearMinimumCuts(g, 1.0, rng, 40);
  for (size_t i = 0; i < cuts.size(); ++i) {
    for (size_t j = i + 1; j < cuts.size(); ++j) {
      const bool same = cuts[i].side == cuts[j].side ||
                        cuts[i].side == ComplementSet(cuts[j].side);
      EXPECT_FALSE(same) << i << "," << j;
    }
  }
  EXPECT_GE(cuts.size(), 3u);
}

TEST(DirectedMinCutTest, SimpleTwoVertexGraph) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(1, 0, 2.0);
  const GlobalMinCut cut = DirectedGlobalMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 2.0);
  EXPECT_NEAR(g.CutWeight(cut.side), 2.0, 1e-9);
}

TEST(DirectedMinCutTest, AsymmetricCycle) {
  DirectedGraph g(4);
  for (int v = 0; v < 4; ++v) {
    g.AddEdge(v, (v + 1) % 4, 3.0);
    g.AddEdge((v + 1) % 4, v, 1.0);
  }
  // Any single-vertex cut has forward weight 3 + 1 = 4; the reverse
  // orientation also 4. Minimum over all cuts is 4.
  const GlobalMinCut cut = DirectedGlobalMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 4.0);
}

TEST(DirectedMinCutTest, AgreesWithExhaustiveEnumeration) {
  Rng rng(31);
  const DirectedGraph g = RandomBalancedDigraph(10, 0.3, 2.0, rng);
  const GlobalMinCut cut = DirectedGlobalMinCut(g);
  // Exhaustive check over all proper cuts.
  double best = 1e18;
  const int n = g.num_vertices();
  for (uint64_t mask = 1; mask + 1 < (1ULL << n); ++mask) {
    VertexSet side(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      side[static_cast<size_t>(v)] = static_cast<uint8_t>((mask >> v) & 1);
    }
    best = std::min(best, g.CutWeight(side));
  }
  EXPECT_NEAR(cut.value, best, 1e-9);
}

}  // namespace
}  // namespace dcs
