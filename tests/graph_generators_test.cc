#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "graph/balance.h"
#include "graph/connectivity.h"
#include "graph/zoo.h"
#include "gtest/gtest.h"
#include "mincut/stoer_wagner.h"

namespace dcs {
namespace {

TEST(GeneratorsTest, BalancedDigraphIsStronglyConnected) {
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(20, 0.1, 4.0, rng);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(GeneratorsTest, BalancedDigraphPerEdgeRatio) {
  Rng rng(2);
  const DirectedGraph g = RandomBalancedDigraph(15, 0.3, 5.0, rng);
  const auto certificate = PerEdgeBalanceCertificate(g);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_NEAR(*certificate, 5.0, 1e-9);
}

TEST(GeneratorsTest, BalancedDigraphEdgeCountGrowsWithProbability) {
  Rng rng1(3);
  Rng rng2(3);
  const DirectedGraph sparse = RandomBalancedDigraph(40, 0.05, 2.0, rng1);
  const DirectedGraph dense = RandomBalancedDigraph(40, 0.8, 2.0, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(GeneratorsTest, EulerianDigraphHasEqualInOutDegrees) {
  Rng rng(4);
  const DirectedGraph g = RandomEulerianDigraph(12, 20, 6, rng);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.OutDegree(v), g.InDegree(v)) << "vertex " << v;
  }
}

TEST(GeneratorsTest, EulerianDigraphIsOneBalanced) {
  Rng rng(5);
  const DirectedGraph g = RandomEulerianDigraph(10, 15, 5, rng);
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_NEAR(MeasureBalanceExact(g), 1.0, 1e-9);
}

TEST(GeneratorsTest, CompleteBipartiteDigraphStructure) {
  const DirectedGraph g = CompleteBipartiteDigraph(3, 4, 2.0, 0.5);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 24);
  // Left vertices only have forward out-edges.
  EXPECT_DOUBLE_EQ(g.OutDegree(0), 8.0);
  EXPECT_DOUBLE_EQ(g.InDegree(0), 2.0);
}

TEST(GeneratorsTest, RandomUndirectedGraphConnectedFlag) {
  Rng rng(6);
  const UndirectedGraph g =
      RandomUndirectedGraph(30, 0.0, 1.0, 1.0, /*ensure_connected=*/true, rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_edges(), 29);  // just the Hamiltonian path
}

TEST(GeneratorsTest, RandomUndirectedGraphWeightRange) {
  Rng rng(7);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.5, 2.0, 3.0, false, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 3.0);
  }
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  const UndirectedGraph g = CompleteGraph(6, 1.0);
  EXPECT_EQ(g.num_edges(), 15);
  for (int v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(g.Degree(v), 5.0);
}

TEST(GeneratorsTest, CycleGraphMinCutIsTwo) {
  const UndirectedGraph g = CycleGraph(9, 1.5);
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 3.0);  // two edges of weight 1.5
}

TEST(GeneratorsTest, DumbbellMinCutEqualsBridgeCount) {
  for (int bridges : {1, 2, 4}) {
    const UndirectedGraph g = DumbbellGraph(8, bridges);
    const GlobalMinCut cut = StoerWagnerMinCut(g);
    EXPECT_DOUBLE_EQ(cut.value, static_cast<double>(bridges))
        << "bridges=" << bridges;
    EXPECT_EQ(SetSize(cut.side) % 8, 0);  // splits along the cliques
  }
}

TEST(GeneratorsTest, MatchingUnionIsRegular) {
  Rng rng(8);
  const UndirectedGraph g = UnionOfRandomMatchings(16, 5, rng);
  EXPECT_EQ(g.num_edges(), 5 * 8);
  for (int v = 0; v < 16; ++v) EXPECT_DOUBLE_EQ(g.Degree(v), 5.0);
}

TEST(GeneratorsTest, GridGraphStructure) {
  const UndirectedGraph g = GridGraph(4, 6);
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_EQ(g.num_edges(), 4 * 5 + 3 * 6);  // horizontal + vertical
  EXPECT_TRUE(IsConnected(g));
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_DOUBLE_EQ(g.Degree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.Degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(7), 4.0);
  // The minimum cut isolates a corner (degree 2).
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 2.0);
}

TEST(GeneratorsTest, GridGraphDegenerateShapes) {
  const UndirectedGraph path = GridGraph(1, 5);
  EXPECT_EQ(path.num_edges(), 4);
  const UndirectedGraph column = GridGraph(5, 1);
  EXPECT_EQ(column.num_edges(), 4);
}

TEST(GeneratorsTest, PreferentialAttachmentShape) {
  Rng rng(9);
  const int m = 3;
  const UndirectedGraph g = PreferentialAttachmentGraph(60, m, rng);
  EXPECT_TRUE(IsConnected(g));
  // Seed clique C(4,2) = 6 edges plus 3 per additional vertex.
  EXPECT_EQ(g.num_edges(), 6 + (60 - 4) * 3);
  // Every non-seed vertex has degree >= m; the oldest vertices are hubs.
  for (int v = m + 1; v < 60; ++v) EXPECT_GE(g.Degree(v), 3.0);
  double max_degree = 0;
  for (int v = 0; v < 60; ++v) max_degree = std::max(max_degree, g.Degree(v));
  EXPECT_GE(max_degree, 10.0);  // skewed degrees
}

// ---- Graph-family zoo (graph/zoo.h) ----

TEST(ZooTest, EveryFamilyIsSeedDeterministic) {
  for (const ZooFamily family : AllZooFamilies()) {
    for (const double beta : {1.0, 8.0}) {
      ZooOptions options;
      options.n = 40;
      options.beta = beta;
      options.seed = 77;
      const ZooInstance a = MakeZooInstance(family, options);
      const ZooInstance b = MakeZooInstance(family, options);
      ASSERT_EQ(a.graph.num_vertices(), b.graph.num_vertices())
          << ZooFamilyName(family);
      ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges())
          << ZooFamilyName(family);
      for (int64_t i = 0; i < a.graph.num_edges(); ++i) {
        ASSERT_EQ(a.graph.edges()[static_cast<size_t>(i)],
                  b.graph.edges()[static_cast<size_t>(i)])
            << ZooFamilyName(family) << " edge " << i;
      }
      ASSERT_EQ(a.planted_min_cut.has_value(), b.planted_min_cut.has_value());
      if (a.planted_min_cut.has_value()) {
        EXPECT_DOUBLE_EQ(*a.planted_min_cut, *b.planted_min_cut);
        EXPECT_EQ(*a.planted_side, *b.planted_side);
      }
    }
  }
}

TEST(ZooTest, RandomFamiliesChangeWithTheSeed) {
  // The randomized families must actually use the seed; the structured
  // ones (dumbbell, layered_bipartite) are the same graph for any seed.
  for (const ZooFamily family : {ZooFamily::kPowerLaw, ZooFamily::kExpander,
                                 ZooFamily::kPlantedCut}) {
    ZooOptions options;
    options.n = 40;
    options.beta = 2.0;
    options.seed = 1;
    const ZooInstance a = MakeZooInstance(family, options);
    options.seed = 2;
    const ZooInstance b = MakeZooInstance(family, options);
    bool differs = a.graph.num_edges() != b.graph.num_edges();
    for (int64_t i = 0; !differs && i < a.graph.num_edges(); ++i) {
      differs = !(a.graph.edges()[static_cast<size_t>(i)] ==
                  b.graph.edges()[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(differs) << ZooFamilyName(family);
  }
}

TEST(ZooTest, EveryFamilyIsStronglyConnectedAndCertified) {
  for (const ZooFamily family : AllZooFamilies()) {
    for (const double beta : {1.0, 4.0}) {
      ZooOptions options;
      options.n = 32;
      options.beta = beta;
      options.seed = 5;
      const ZooInstance instance = MakeZooInstance(family, options);
      EXPECT_TRUE(IsStronglyConnected(instance.graph))
          << ZooFamilyName(family);
      const auto certificate = PerEdgeBalanceCertificate(instance.graph);
      ASSERT_TRUE(certificate.has_value()) << ZooFamilyName(family);
      EXPECT_NEAR(*certificate, beta, 1e-9) << ZooFamilyName(family);
      EXPECT_DOUBLE_EQ(instance.beta_certificate, beta);
    }
  }
}

TEST(ZooTest, FamilyShapesMatchTheirConstructions) {
  ZooOptions options;
  options.n = 40;
  options.beta = 2.0;
  options.seed = 9;

  // Power-law: seed clique C(4,2) pairs plus 3 pairs per later vertex,
  // two directed edges per pair; hubs emerge from preferential attachment.
  const ZooInstance power =
      MakeZooInstance(ZooFamily::kPowerLaw, options);
  EXPECT_EQ(power.graph.num_vertices(), 40);
  EXPECT_EQ(power.graph.num_edges(), 2 * (6 + (40 - 4) * 3));
  double max_out = 0;
  for (int v = 0; v < 40; ++v) {
    max_out = std::max(max_out, power.graph.OutDegree(v));
  }
  EXPECT_GE(max_out, 8.0);

  // Expander: union of 4 perfect matchings of balanced pairs. Each
  // matching touches every vertex with one pair (weight 1 one way, 1/β
  // back), so out+in weight is exactly 4·(1 + 1/β) at every vertex.
  const ZooInstance expander =
      MakeZooInstance(ZooFamily::kExpander, options);
  EXPECT_EQ(expander.graph.num_vertices(), 40);
  EXPECT_EQ(expander.graph.num_edges(), 4 * (40 / 2) * 2);
  for (int v = 0; v < 40; ++v) {
    const double total =
        expander.graph.OutDegree(v) + expander.graph.InDegree(v);
    EXPECT_NEAR(total, 4 * (1.0 + 1.0 / options.beta), 1e-9)
        << "vertex " << v;
  }

  // Planted cut / dumbbell: planted side is exactly half the vertices and
  // its cut weight equals the reported planted value.
  for (const ZooFamily family :
       {ZooFamily::kPlantedCut, ZooFamily::kDumbbell}) {
    const ZooInstance instance = MakeZooInstance(family, options);
    ASSERT_TRUE(instance.planted_side.has_value()) << ZooFamilyName(family);
    EXPECT_EQ(SetSize(*instance.planted_side),
              instance.graph.num_vertices() / 2);
    EXPECT_NEAR(instance.graph.CutWeight(*instance.planted_side),
                *instance.planted_min_cut, 1e-9)
        << ZooFamilyName(family);
  }

  // Layered bipartite: 4 layers of width 10, complete bipartite between
  // consecutive layers with wraparound → 4·10·10 pairs.
  const ZooInstance layered =
      MakeZooInstance(ZooFamily::kLayeredBipartite, options);
  EXPECT_EQ(layered.graph.num_vertices(), 40);
  EXPECT_EQ(layered.graph.num_edges(), 2 * 4 * 10 * 10);

  // Families with parity constraints round n down to a multiple of 4.
  options.n = 43;
  EXPECT_EQ(MakeZooInstance(ZooFamily::kExpander, options)
                .graph.num_vertices(), 40);
  EXPECT_EQ(MakeZooInstance(ZooFamily::kPowerLaw, options)
                .graph.num_vertices(), 43);
}

TEST(ZooTest, FamilyNamesRoundTrip) {
  for (const ZooFamily family : AllZooFamilies()) {
    const auto found = FindZooFamily(ZooFamilyName(family));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, family);
  }
  EXPECT_FALSE(FindZooFamily("erdos_renyi").has_value());
}

TEST(GeneratorsTest, GeneratorsAreDeterministicPerSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const UndirectedGraph a = RandomUndirectedGraph(25, 0.3, 1, 2, true, rng_a);
  const UndirectedGraph b = RandomUndirectedGraph(25, 0.3, 1, 2, true, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[static_cast<size_t>(i)],
              b.edges()[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace dcs
