#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "graph/balance.h"
#include "graph/connectivity.h"
#include "gtest/gtest.h"
#include "mincut/stoer_wagner.h"

namespace dcs {
namespace {

TEST(GeneratorsTest, BalancedDigraphIsStronglyConnected) {
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(20, 0.1, 4.0, rng);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(GeneratorsTest, BalancedDigraphPerEdgeRatio) {
  Rng rng(2);
  const DirectedGraph g = RandomBalancedDigraph(15, 0.3, 5.0, rng);
  const auto certificate = PerEdgeBalanceCertificate(g);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_NEAR(*certificate, 5.0, 1e-9);
}

TEST(GeneratorsTest, BalancedDigraphEdgeCountGrowsWithProbability) {
  Rng rng1(3);
  Rng rng2(3);
  const DirectedGraph sparse = RandomBalancedDigraph(40, 0.05, 2.0, rng1);
  const DirectedGraph dense = RandomBalancedDigraph(40, 0.8, 2.0, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(GeneratorsTest, EulerianDigraphHasEqualInOutDegrees) {
  Rng rng(4);
  const DirectedGraph g = RandomEulerianDigraph(12, 20, 6, rng);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.OutDegree(v), g.InDegree(v)) << "vertex " << v;
  }
}

TEST(GeneratorsTest, EulerianDigraphIsOneBalanced) {
  Rng rng(5);
  const DirectedGraph g = RandomEulerianDigraph(10, 15, 5, rng);
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_NEAR(MeasureBalanceExact(g), 1.0, 1e-9);
}

TEST(GeneratorsTest, CompleteBipartiteDigraphStructure) {
  const DirectedGraph g = CompleteBipartiteDigraph(3, 4, 2.0, 0.5);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 24);
  // Left vertices only have forward out-edges.
  EXPECT_DOUBLE_EQ(g.OutDegree(0), 8.0);
  EXPECT_DOUBLE_EQ(g.InDegree(0), 2.0);
}

TEST(GeneratorsTest, RandomUndirectedGraphConnectedFlag) {
  Rng rng(6);
  const UndirectedGraph g =
      RandomUndirectedGraph(30, 0.0, 1.0, 1.0, /*ensure_connected=*/true, rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_edges(), 29);  // just the Hamiltonian path
}

TEST(GeneratorsTest, RandomUndirectedGraphWeightRange) {
  Rng rng(7);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.5, 2.0, 3.0, false, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 3.0);
  }
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  const UndirectedGraph g = CompleteGraph(6, 1.0);
  EXPECT_EQ(g.num_edges(), 15);
  for (int v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(g.Degree(v), 5.0);
}

TEST(GeneratorsTest, CycleGraphMinCutIsTwo) {
  const UndirectedGraph g = CycleGraph(9, 1.5);
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(cut.value, 3.0);  // two edges of weight 1.5
}

TEST(GeneratorsTest, DumbbellMinCutEqualsBridgeCount) {
  for (int bridges : {1, 2, 4}) {
    const UndirectedGraph g = DumbbellGraph(8, bridges);
    const GlobalMinCut cut = StoerWagnerMinCut(g);
    EXPECT_DOUBLE_EQ(cut.value, static_cast<double>(bridges))
        << "bridges=" << bridges;
    EXPECT_EQ(SetSize(cut.side) % 8, 0);  // splits along the cliques
  }
}

TEST(GeneratorsTest, MatchingUnionIsRegular) {
  Rng rng(8);
  const UndirectedGraph g = UnionOfRandomMatchings(16, 5, rng);
  EXPECT_EQ(g.num_edges(), 5 * 8);
  for (int v = 0; v < 16; ++v) EXPECT_DOUBLE_EQ(g.Degree(v), 5.0);
}

TEST(GeneratorsTest, GridGraphStructure) {
  const UndirectedGraph g = GridGraph(4, 6);
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_EQ(g.num_edges(), 4 * 5 + 3 * 6);  // horizontal + vertical
  EXPECT_TRUE(IsConnected(g));
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_DOUBLE_EQ(g.Degree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.Degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(7), 4.0);
  // The minimum cut isolates a corner (degree 2).
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 2.0);
}

TEST(GeneratorsTest, GridGraphDegenerateShapes) {
  const UndirectedGraph path = GridGraph(1, 5);
  EXPECT_EQ(path.num_edges(), 4);
  const UndirectedGraph column = GridGraph(5, 1);
  EXPECT_EQ(column.num_edges(), 4);
}

TEST(GeneratorsTest, PreferentialAttachmentShape) {
  Rng rng(9);
  const int m = 3;
  const UndirectedGraph g = PreferentialAttachmentGraph(60, m, rng);
  EXPECT_TRUE(IsConnected(g));
  // Seed clique C(4,2) = 6 edges plus 3 per additional vertex.
  EXPECT_EQ(g.num_edges(), 6 + (60 - 4) * 3);
  // Every non-seed vertex has degree >= m; the oldest vertices are hubs.
  for (int v = m + 1; v < 60; ++v) EXPECT_GE(g.Degree(v), 3.0);
  double max_degree = 0;
  for (int v = 0; v < 60; ++v) max_degree = std::max(max_degree, g.Degree(v));
  EXPECT_GE(max_degree, 10.0);  // skewed degrees
}

TEST(GeneratorsTest, GeneratorsAreDeterministicPerSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const UndirectedGraph a = RandomUndirectedGraph(25, 0.3, 1, 2, true, rng_a);
  const UndirectedGraph b = RandomUndirectedGraph(25, 0.3, 1, 2, true, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[static_cast<size_t>(i)],
              b.edges()[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace dcs
