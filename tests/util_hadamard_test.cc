// Verifies the Lemma 3.2 matrix properties the Section 3 encoding relies
// on: balanced rows, pairwise orthogonality, tensor factor structure, and
// the decoding identity ⟨x, M_t⟩ = z_t·‖M_t‖².

#include "util/hadamard.h"

#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(HadamardTest, SmallMatrixEntries) {
  const HadamardMatrix h(1);  // [[1,1],[1,-1]]
  EXPECT_EQ(h.Entry(0, 0), 1);
  EXPECT_EQ(h.Entry(0, 1), 1);
  EXPECT_EQ(h.Entry(1, 0), 1);
  EXPECT_EQ(h.Entry(1, 1), -1);
}

TEST(HadamardTest, FirstRowAllOnes) {
  const HadamardMatrix h(4);
  for (int col = 0; col < h.size(); ++col) {
    EXPECT_EQ(h.Entry(0, col), 1);
  }
}

TEST(HadamardTest, NonFirstRowsAreBalanced) {
  const HadamardMatrix h(4);
  for (int row = 1; row < h.size(); ++row) {
    int sum = 0;
    for (int col = 0; col < h.size(); ++col) sum += h.Entry(row, col);
    EXPECT_EQ(sum, 0) << "row " << row;
  }
}

TEST(HadamardTest, RowsAreOrthogonal) {
  const HadamardMatrix h(3);
  for (int r1 = 0; r1 < h.size(); ++r1) {
    for (int r2 = r1 + 1; r2 < h.size(); ++r2) {
      int dot = 0;
      for (int col = 0; col < h.size(); ++col) {
        dot += h.Entry(r1, col) * h.Entry(r2, col);
      }
      EXPECT_EQ(dot, 0) << r1 << "," << r2;
    }
  }
}

TEST(FwhtTest, MatchesNaiveTransform) {
  Rng rng(1);
  const HadamardMatrix h(4);
  const int n = h.size();
  std::vector<int64_t> input(static_cast<size_t>(n));
  for (auto& v : input) v = rng.UniformInRange(-50, 50);
  std::vector<int64_t> naive(static_cast<size_t>(n), 0);
  for (int row = 0; row < n; ++row) {
    for (int col = 0; col < n; ++col) {
      naive[static_cast<size_t>(row)] +=
          h.Entry(row, col) * input[static_cast<size_t>(col)];
    }
  }
  std::vector<int64_t> fast = input;
  FastWalshHadamardTransform(fast);
  EXPECT_EQ(fast, naive);
}

TEST(FwhtTest, TwiceIsScaling) {
  std::vector<int64_t> values = {3, -1, 4, 1, -5, 9, 2, -6};
  const std::vector<int64_t> original = values;
  FastWalshHadamardTransform(values);
  FastWalshHadamardTransform(values);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], 8 * original[i]);
  }
}

class TensorSignMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(TensorSignMatrixTest, Lemma32Condition1RowsBalanced) {
  const TensorSignMatrix m(GetParam());
  for (int64_t t = 0; t < m.rows(); ++t) {
    int64_t sum = 0;
    for (int64_t col = 0; col < m.cols(); ++col) sum += m.Entry(t, col);
    EXPECT_EQ(sum, 0) << "row " << t;
  }
}

TEST_P(TensorSignMatrixTest, Lemma32Condition2RowsOrthogonal) {
  const TensorSignMatrix m(GetParam());
  // Exhaustive for small sizes, sampled pairs otherwise.
  const int64_t limit = m.rows() > 16 ? 16 : m.rows();
  for (int64_t t1 = 0; t1 < limit; ++t1) {
    for (int64_t t2 = t1 + 1; t2 < limit; ++t2) {
      int64_t dot = 0;
      for (int64_t col = 0; col < m.cols(); ++col) {
        dot += m.Entry(t1, col) * m.Entry(t2, col);
      }
      EXPECT_EQ(dot, 0) << t1 << "," << t2;
    }
  }
}

TEST_P(TensorSignMatrixTest, Lemma32Condition3TensorFactors) {
  const TensorSignMatrix m(GetParam());
  const int n = m.block_size();
  for (int64_t t = 0; t < m.rows(); ++t) {
    const std::vector<int8_t> u = m.LeftFactor(t);
    const std::vector<int8_t> v = m.RightFactor(t);
    // Factors are balanced ±1 vectors.
    int u_sum = 0, v_sum = 0;
    for (int8_t s : u) u_sum += s;
    for (int8_t s : v) v_sum += s;
    ASSERT_EQ(u_sum, 0);
    ASSERT_EQ(v_sum, 0);
    // M_t = u ⊗ v.
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        ASSERT_EQ(m.Entry(t, static_cast<int64_t>(a) * n + b),
                  u[static_cast<size_t>(a)] * v[static_cast<size_t>(b)]);
      }
    }
  }
}

TEST_P(TensorSignMatrixTest, EncodeSignsMatchesNaiveSum) {
  const TensorSignMatrix m(GetParam());
  Rng rng(99);
  const std::vector<int8_t> z =
      rng.RandomSignString(static_cast<int>(m.rows()));
  const std::vector<int64_t> x = m.EncodeSigns(z);
  ASSERT_EQ(static_cast<int64_t>(x.size()), m.cols());
  for (int64_t col = 0; col < m.cols(); ++col) {
    int64_t expected = 0;
    for (int64_t t = 0; t < m.rows(); ++t) {
      expected += z[static_cast<size_t>(t)] * m.Entry(t, col);
    }
    ASSERT_EQ(x[static_cast<size_t>(col)], expected) << "col " << col;
  }
}

TEST_P(TensorSignMatrixTest, DecodingIdentity) {
  // ⟨x, M_t⟩ = z_t·‖M_t‖² = z_t·N², the identity the decoder relies on.
  const TensorSignMatrix m(GetParam());
  Rng rng(7);
  const std::vector<int8_t> z =
      rng.RandomSignString(static_cast<int>(m.rows()));
  const std::vector<int64_t> x = m.EncodeSigns(z);
  for (int64_t t = 0; t < m.rows(); ++t) {
    EXPECT_EQ(m.InnerProductWithRow(x, t),
              static_cast<int64_t>(z[static_cast<size_t>(t)]) *
                  m.RowNormSquared());
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TensorSignMatrixTest,
                         ::testing::Values(1, 2, 3));

TEST(TensorSignMatrixTest, DecodingIdentityAtLargeBlockSize) {
  // N = 64: 3969 rows, 4096 columns — the FWHT path at realistic scale.
  const TensorSignMatrix m(6);
  Rng rng(123);
  const std::vector<int8_t> z =
      rng.RandomSignString(static_cast<int>(m.rows()));
  const std::vector<int64_t> x = m.EncodeSigns(z);
  for (int64_t t = 0; t < m.rows(); t += 397) {
    EXPECT_EQ(m.InnerProductWithRow(x, t),
              static_cast<int64_t>(z[static_cast<size_t>(t)]) *
                  m.RowNormSquared());
  }
}

TEST(TensorSignMatrixTest, Dimensions) {
  const TensorSignMatrix m(3);  // N = 8
  EXPECT_EQ(m.block_size(), 8);
  EXPECT_EQ(m.rows(), 49);
  EXPECT_EQ(m.cols(), 64);
  EXPECT_EQ(m.RowNormSquared(), 64);
}

TEST(TensorSignMatrixTest, RowFactorsExcludeAllOnesRow) {
  const TensorSignMatrix m(2);
  for (int64_t t = 0; t < m.rows(); ++t) {
    const auto [i, j] = m.RowFactors(t);
    EXPECT_GE(i, 1);
    EXPECT_GE(j, 1);
    EXPECT_LT(i, m.block_size());
    EXPECT_LT(j, m.block_size());
  }
}

}  // namespace
}  // namespace dcs
