// FaultInjectingOracle: retry-or-propagate behavior of the local-query
// algorithms against an unreliable backend, and the determinism contract
// (a recovered run is bit-identical to a fault-free run, because retries
// draw nothing from the algorithm's Rng).

#include "localquery/fault_injection.h"

#include "graph/ugraph.h"
#include "gtest/gtest.h"
#include "localquery/mincut_estimator.h"
#include "localquery/oracle.h"
#include "localquery/query_retry.h"
#include "localquery/verify_guess.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {
namespace {

// Connected unweighted multigraph: a 12-cycle plus chords, min cut > 2.
UndirectedGraph TestGraph() {
  constexpr int n = 12;
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v) {
    g.AddEdge(v, (v + 1) % n, 1.0);
    g.AddEdge(v, (v + 3) % n, 1.0);
  }
  return g;
}

TEST(FaultInjectionTest, AlwaysFailingReturnsUnavailable) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 1.0, /*seed=*/1);
  const auto degree = faulty.TryDegree(0);
  ASSERT_FALSE(degree.ok());
  EXPECT_EQ(degree.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(faulty.TryNeighbor(0, 0).ok());
  EXPECT_FALSE(faulty.TryAdjacent(0, 1).ok());
  EXPECT_EQ(faulty.injected_failures(), 3);
  // Failed queries never reach the base oracle but count as issued on the
  // wrapper (the caller did pay for them).
  EXPECT_EQ(base.counts().total(), 0);
  EXPECT_EQ(faulty.counts().total(), 3);
}

TEST(FaultInjectionTest, ZeroRateIsTransparent) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 0.0, /*seed=*/1);
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto degree = faulty.TryDegree(v);
    ASSERT_TRUE(degree.ok());
    EXPECT_EQ(degree.value(), base.Degree(v));
  }
  EXPECT_EQ(faulty.injected_failures(), 0);
}

TEST(FaultInjectionTest, InfallibleQueriesPassThrough) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 1.0, /*seed=*/1);
  EXPECT_EQ(faulty.num_vertices(), g.num_vertices());
  EXPECT_EQ(faulty.Degree(0), 4);
  EXPECT_TRUE(faulty.Adjacent(0, 1));
  EXPECT_EQ(faulty.injected_failures(), 0);
}

TEST(FaultInjectionTest, RetryRecoversFromTransientFaults) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  // At rate 0.25 a query still fails all kMaxQueryAttempts tries with
  // probability 0.25^8 ≈ 1.5e-5; this fixed-seed loop stays clear of that.
  FaultInjectingOracle faulty(base, 0.25, /*seed=*/5);
  for (int round = 0; round < 100; ++round) {
    const VertexId u = round % g.num_vertices();
    const auto degree =
        RetryQuery([&] { return faulty.TryDegree(u); });
    ASSERT_TRUE(degree.ok()) << "round " << round;
    EXPECT_EQ(degree.value(), base.Degree(u));
  }
  EXPECT_GT(faulty.injected_failures(), 0);
  // The wrapper billed every attempt; the base only saw the successes.
  EXPECT_EQ(faulty.counts().degree,
            100 + faulty.injected_failures());
}

TEST(FaultInjectionTest, VerifyGuessPropagatesPersistentFailure) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 1.0, /*seed=*/2);
  Rng rng(3);
  const auto result = VerifyGuess(faulty, 4.0, 0.5, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(FaultInjectionTest, EstimatorPropagatesPersistentFailure) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 1.0, /*seed=*/2);
  Rng rng(3);
  const auto result = EstimateMinCutLocalQueries(
      faulty, 0.5, SearchMode::kModifiedConstantSearch, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ShortReadTest, ShortReadReturnsDataLossAndIsCounted) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, /*failure_rate=*/0.0,
                              /*short_read_rate=*/1.0, /*seed=*/1);
  const auto degree = faulty.TryDegree(0);
  ASSERT_FALSE(degree.ok());
  EXPECT_EQ(degree.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(faulty.injected_short_reads(), 1);
  EXPECT_EQ(faulty.injected_failures(), 0);
  EXPECT_EQ(base.counts().total(), 0);  // the truncated reply never arrived
}

TEST(ShortReadTest, ShortReadIsNotRetried) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 0.0, 1.0, /*seed=*/2);
  const auto result = RetryQuery([&] { return faulty.TryDegree(0); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  // A truncated reply is not transient: exactly one attempt, no reissue.
  EXPECT_EQ(faulty.counts().degree, 1);
  EXPECT_EQ(faulty.injected_short_reads(), 1);
}

TEST(ShortReadTest, EstimatorPropagatesShortRead) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 0.0, 1.0, /*seed=*/3);
  Rng rng(4);
  const auto result = EstimateMinCutLocalQueries(
      faulty, 0.5, SearchMode::kModifiedConstantSearch, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ShortReadTest, ZeroShortReadRateReplaysTheTwoArgFaultScript) {
  // The mixed-mode constructor splits one uniform draw across the fault
  // kinds, so at short_read_rate = 0 it must inject the exact same faults
  // at the exact same queries as the two-argument constructor.
  const UndirectedGraph g = TestGraph();
  GraphOracle base_a(g), base_b(g);
  FaultInjectingOracle two_arg(base_a, 0.25, /*seed=*/9);
  FaultInjectingOracle three_arg(base_b, 0.25, /*short_read_rate=*/0.0,
                                 /*seed=*/9);
  for (int q = 0; q < 200; ++q) {
    const VertexId u = q % g.num_vertices();
    EXPECT_EQ(two_arg.TryDegree(u).ok(), three_arg.TryDegree(u).ok())
        << "query " << q;
  }
  EXPECT_EQ(two_arg.injected_failures(), three_arg.injected_failures());
  EXPECT_EQ(three_arg.injected_short_reads(), 0);
}

TEST(ShortReadTest, MixedRatesInjectBothKinds) {
  const UndirectedGraph g = TestGraph();
  GraphOracle base(g);
  FaultInjectingOracle faulty(base, 0.2, 0.2, /*seed=*/11);
  int transient = 0, short_reads = 0;
  for (int q = 0; q < 300; ++q) {
    const auto result = faulty.TryDegree(q % g.num_vertices());
    if (result.ok()) continue;
    if (result.status().code() == StatusCode::kUnavailable) ++transient;
    if (result.status().code() == StatusCode::kDataLoss) ++short_reads;
  }
  EXPECT_GT(transient, 0);
  EXPECT_GT(short_reads, 0);
  EXPECT_EQ(faulty.injected_failures(), transient);
  EXPECT_EQ(faulty.injected_short_reads(), short_reads);
}

TEST(FaultInjectionTest, RecoveredRunIsBitIdenticalToFaultFree) {
  const UndirectedGraph g = TestGraph();

  GraphOracle clean(g);
  Rng clean_rng(42);
  const auto clean_result = EstimateMinCutLocalQueries(
      clean, 0.4, SearchMode::kModifiedConstantSearch, clean_rng);
  ASSERT_TRUE(clean_result.ok());

  GraphOracle base(g);
  // Rate 0.1: a query survives retries with failure probability 1e-8, so
  // the run recovers; the injector's own Rng stream leaves the algorithm's
  // randomness untouched.
  FaultInjectingOracle faulty(base, 0.1, /*seed=*/77);
  Rng faulty_rng(42);
  const auto faulty_result = EstimateMinCutLocalQueries(
      faulty, 0.4, SearchMode::kModifiedConstantSearch, faulty_rng);
  ASSERT_TRUE(faulty_result.ok());

  EXPECT_GT(faulty.injected_failures(), 0);
  EXPECT_EQ(faulty_result->estimate, clean_result->estimate);
  EXPECT_EQ(faulty_result->verify_guess_calls,
            clean_result->verify_guess_calls);
  // Same queries issued by the algorithm, plus the billed retries.
  EXPECT_EQ(base.counts().total(), clean.counts().total());
  EXPECT_EQ(faulty.counts().total(),
            clean.counts().total() + faulty.injected_failures());
}

}  // namespace
}  // namespace dcs
