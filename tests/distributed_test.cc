// The distributed min-cut pipeline: partitioning, sketch-based candidate
// enumeration + accurate re-evaluation, and communication accounting.

#include "distributed/distributed_mincut.h"

#include <cmath>

#include "distributed/directed_distributed_mincut.h"
#include "mincut/directed_mincut.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(PartitionEdgesTest, PreservesEveryEdgeExactlyOnce) {
  Rng gen_rng(1);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.4, 1.0, 2.0, true, gen_rng);
  Rng rng(2);
  const std::vector<UndirectedGraph> parts = PartitionEdges(g, 4, rng);
  ASSERT_EQ(parts.size(), 4u);
  int64_t total_edges = 0;
  double total_weight = 0;
  for (const UndirectedGraph& part : parts) {
    EXPECT_EQ(part.num_vertices(), 20);
    total_edges += part.num_edges();
    total_weight += part.TotalWeight();
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_NEAR(total_weight, g.TotalWeight(), 1e-9);
}

TEST(PartitionEdgesTest, CutValuesAddAcrossServers) {
  Rng gen_rng(3);
  const UndirectedGraph g =
      RandomUndirectedGraph(16, 0.5, 1.0, 1.0, true, gen_rng);
  Rng rng(4);
  const std::vector<UndirectedGraph> parts = PartitionEdges(g, 3, rng);
  const VertexSet side = MakeVertexSet(16, {0, 2, 4, 6, 8});
  double sum = 0;
  for (const UndirectedGraph& part : parts) sum += part.CutWeight(side);
  EXPECT_NEAR(sum, g.CutWeight(side), 1e-9);
}

TEST(DistributedMinCutTest, RecoversDumbbellMinCut) {
  const UndirectedGraph g = DumbbellGraph(14, 4);
  Rng rng(5);
  DistributedMinCutOptions options;
  options.epsilon = 0.15;
  const std::vector<UndirectedGraph> parts = PartitionEdges(g, 4, rng);
  const DistributedMinCutPipeline pipeline(parts, options, rng);
  const auto result = pipeline.Run(rng);
  EXPECT_NEAR(result.estimate, 4.0, 1.5);
  EXPECT_GT(result.candidates_considered, 0);
  // The reported best side should really be a near-minimum cut of G.
  EXPECT_LE(g.CutWeight(result.best_side), 4.0 * 1.6);
}

TEST(DistributedMinCutTest, AccurateOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng gen_rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(28, 0.35, 1.0, 1.0, true, gen_rng);
    const double exact = StoerWagnerMinCut(g).value;
    Rng rng(seed + 10);
    DistributedMinCutOptions options;
    options.epsilon = 0.2;
    const DistributedMinCutPipeline pipeline(PartitionEdges(g, 3, rng),
                                             options, rng);
    const auto result = pipeline.Run(rng);
    EXPECT_NEAR(result.estimate, exact, 0.5 * exact + 0.5) << "seed=" << seed;
  }
}

TEST(DistributedMinCutTest, ForEachCommunicationBeatsShippingEdges) {
  // At n = 64 the for-all sparsifier's ln(n)/ε² rate saturates (it keeps
  // everything — the asymptotic win needs larger n and is measured in
  // bench_distributed_mincut); the for-each sketches, with their 1/ε rate,
  // already compress a dense graph at this size.
  const UndirectedGraph g = CompleteGraph(64, 1.0);
  Rng rng(6);
  DistributedMinCutOptions options;
  options.epsilon = 0.5;
  options.median_boost = 1;
  const DistributedMinCutPipeline pipeline(PartitionEdges(g, 4, rng),
                                           options, rng);
  const auto result = pipeline.Run(rng);
  EXPECT_LT(result.foreach_bits, pipeline.NaiveShipAllBits());
  EXPECT_GT(result.forall_bits, 0);
  EXPECT_GT(result.foreach_bits, 0);
}

TEST(DistributedMinCutTest, SingleServerDegeneratesGracefully) {
  const UndirectedGraph g = DumbbellGraph(10, 2);
  Rng rng(7);
  DistributedMinCutOptions options;
  const DistributedMinCutPipeline pipeline(PartitionEdges(g, 1, rng),
                                           options, rng);
  const auto result = pipeline.Run(rng);
  EXPECT_NEAR(result.estimate, 2.0, 1.0);
}

TEST(DistributedChaosTest, SameChaosSeedIsDeterministic) {
  const UndirectedGraph g = DumbbellGraph(10, 3);
  Rng part_rng(30);
  DistributedMinCutOptions options;
  options.median_boost = 2;
  Rng build_rng(31);
  const DistributedMinCutPipeline pipeline(PartitionEdges(g, 3, part_rng),
                                           options, build_rng);
  ChannelOptions channel;
  channel.seed = 6;
  channel.drop_rate = 0.25;
  channel.flip_rate = 0.05;
  channel.max_rounds = 32;
  Rng r1(32), r2(32);
  const auto a = pipeline.Run(r1, channel).value();
  const auto b = pipeline.Run(r2, channel).value();
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.channel_wire_bits, b.channel_wire_bits);
  EXPECT_EQ(a.retransmitted_bits, b.retransmitted_bits);
  EXPECT_EQ(a.lost_servers, b.lost_servers);
}

TEST(DistributedChaosTest, DegradedRunWidensEffectiveEpsilon) {
  const UndirectedGraph g = DumbbellGraph(12, 3);
  Rng part_rng(33);
  DistributedMinCutOptions options;
  options.median_boost = 2;
  Rng build_rng(34);
  const int num_servers = 4;
  const DistributedMinCutPipeline pipeline(
      PartitionEdges(g, num_servers, part_rng), options, build_rng);
  for (uint64_t chaos_seed = 1; chaos_seed <= 64; ++chaos_seed) {
    ChannelOptions channel;
    channel.seed = chaos_seed;
    channel.drop_rate = 0.18;
    channel.max_rounds = 2;
    Rng rng(35);
    const auto run = pipeline.Run(rng, channel);
    if (!run.ok() || run->lost_servers.empty()) continue;
    const auto& result = run.value();
    const int survivors =
        num_servers - static_cast<int>(result.lost_servers.size());
    ASSERT_GT(survivors, 0);
    // The widened bound is ε·√(S/(S−L)) — the error of the smaller
    // surviving sample.
    EXPECT_DOUBLE_EQ(
        result.effective_epsilon,
        options.epsilon *
            std::sqrt(static_cast<double>(num_servers) / survivors));
    EXPECT_TRUE(result.degraded);
    return;
  }
  FAIL() << "no chaos seed in [1, 64] produced a partial loss";
}

TEST(DirectedDistributedTest, PartitionPreservesDirectedEdges) {
  Rng gen_rng(20);
  const DirectedGraph g = RandomBalancedDigraph(16, 0.4, 2.0, gen_rng);
  Rng rng(21);
  const std::vector<DirectedGraph> parts = PartitionDirectedEdges(g, 3, rng);
  int64_t total = 0;
  const VertexSet side = MakeVertexSet(16, {0, 5, 10});
  double cut_sum = 0;
  for (const DirectedGraph& part : parts) {
    total += part.num_edges();
    cut_sum += part.CutWeight(side);
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_NEAR(cut_sum, g.CutWeight(side), 1e-9);
}

TEST(DirectedDistributedTest, RecoversDirectedMinCut) {
  // A balanced digraph with a planted weak directed cut: two dense blocks
  // joined by thin bidirected links.
  const int block = 10;
  DirectedGraph g(2 * block);
  Rng gen_rng(22);
  auto add_pair = [&](int u, int v, double w, double beta) {
    g.AddEdge(u, v, w);
    g.AddEdge(v, u, w / beta);
  };
  for (int b = 0; b < 2; ++b) {
    for (int u = 0; u < block; ++u) {
      for (int v = u + 1; v < block; ++v) {
        add_pair(b * block + u, b * block + v, 1.0, 2.0);
      }
    }
  }
  for (int k = 0; k < 3; ++k) add_pair(k, block + k, 0.5, 2.0);
  const GlobalMinCut truth = DirectedGlobalMinCut(g);
  Rng rng(23);
  DirectedDistributedOptions options;
  options.epsilon = 0.1;
  options.beta = 2.0;
  const DirectedDistributedMinCutPipeline pipeline(
      PartitionDirectedEdges(g, 3, rng), options, rng);
  const auto result = pipeline.Run(rng);
  EXPECT_NEAR(result.estimate, truth.value, 0.35 * truth.value + 0.2);
  EXPECT_GT(result.candidates_considered, 0);
  EXPECT_GT(result.total_bits(), 0);
}

TEST(DirectedDistributedTest, EulerianGraphBothOrientationsEqual) {
  Rng gen_rng(24);
  const DirectedGraph g = RandomEulerianDigraph(14, 40, 6, gen_rng);
  const GlobalMinCut truth = DirectedGlobalMinCut(g);
  Rng rng(25);
  DirectedDistributedOptions options;
  options.epsilon = 0.15;
  options.beta = 1.0;
  const DirectedDistributedMinCutPipeline pipeline(
      PartitionDirectedEdges(g, 2, rng), options, rng);
  const auto result = pipeline.Run(rng);
  EXPECT_NEAR(result.estimate, truth.value, 0.4 * truth.value + 0.5);
}

}  // namespace
}  // namespace dcs
