// The streaming ingestion pipeline: gutter/shard bit-identity across
// producer counts and flush interleavings, delete validation at admission,
// epoch/snapshot consistency, the CutQueryService registration path, and
// the replayable binary stream format (round trips + corruption).

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "serve/cut_query_service.h"
#include "stream/agm_sketch.h"
#include "stream/binary_stream.h"
#include "stream/ingest.h"
#include "util/random.h"

namespace dcs {
namespace {

// A workload whose deletes always follow their inserts in stream order.
std::vector<EdgeUpdate> Workload(int n, int64_t count, uint64_t seed) {
  Rng rng(seed);
  return RandomUpdateStream(n, count, 0.25, rng);
}

// Serial ground truth for a workload (k == 0 sketches).
uint64_t SerialDigest(int n, int rounds, uint64_t seed,
                      const std::vector<EdgeUpdate>& updates) {
  AgmConnectivitySketch sketch(n, rounds, seed);
  for (const EdgeUpdate& update : updates) {
    if (update.is_delete) {
      sketch.RemoveEdge(update.u, update.v);
    } else {
      sketch.AddEdge(update.u, update.v);
    }
  }
  return sketch.Digest();
}

TEST(StreamIngestorTest, SingleShardMatchesDirectSketch) {
  const int n = 32;
  const std::vector<EdgeUpdate> updates = Workload(n, 500, 3);
  StreamIngestorOptions options;
  options.num_shards = 1;
  options.gutter_capacity = 7;  // deliberately odd: many partial flushes
  options.rounds = 4;
  options.seed = 5;
  StreamIngestor ingestor(n, options);
  for (const EdgeUpdate& update : updates) {
    ASSERT_TRUE(ingestor.Push(update).ok());
  }
  ASSERT_TRUE(ingestor.Barrier().ok());
  EXPECT_EQ(ingestor.snapshot()->digest, SerialDigest(n, 4, 5, updates));
  EXPECT_EQ(ingestor.snapshot()->updates_applied,
            static_cast<int64_t>(updates.size()));
}

TEST(StreamIngestorTest, BitIdenticalAcrossShardAndGutterConfigs) {
  const int n = 40;
  const std::vector<EdgeUpdate> updates = Workload(n, 800, 7);
  const uint64_t reference = SerialDigest(n, 5, 9, updates);
  for (const int shards : {1, 3, 8}) {
    for (const int gutter : {1, 16, 4096}) {
      StreamIngestorOptions options;
      options.num_shards = shards;
      options.gutter_capacity = gutter;
      options.rounds = 5;
      options.seed = 9;
      StreamIngestor ingestor(n, options);
      for (const EdgeUpdate& update : updates) {
        ASSERT_TRUE(ingestor.Push(update).ok());
      }
      ASSERT_TRUE(ingestor.Barrier().ok());
      EXPECT_EQ(ingestor.snapshot()->digest, reference)
          << "shards=" << shards << " gutter=" << gutter;
    }
  }
}

TEST(StreamIngestorTest, BitIdenticalAcrossInserterCounts) {
  // Per-producer streams (each producer's deletes target only its own
  // inserts) whose union is pushed by 1, 2, and 4 threads; every run must
  // seal the same digest.
  const int n = 40;
  std::vector<std::vector<EdgeUpdate>> streams;
  std::vector<EdgeUpdate> all;
  for (int p = 0; p < 4; ++p) {
    streams.push_back(Workload(n, 300, SubtaskSeed(21, p)));
    all.insert(all.end(), streams.back().begin(), streams.back().end());
  }
  const uint64_t reference = SerialDigest(n, 4, 23, all);
  for (const int inserters : {1, 2, 4}) {
    StreamIngestorOptions options;
    options.num_shards = 4;
    options.gutter_capacity = 32;
    options.rounds = 4;
    options.seed = 23;
    StreamIngestor ingestor(n, options);
    std::vector<std::thread> producers;
    const int per = 4 / inserters;
    for (int p = 0; p < inserters; ++p) {
      producers.emplace_back([&streams, &ingestor, p, per] {
        for (int s = p * per; s < (p + 1) * per; ++s) {
          for (const EdgeUpdate& update : streams[static_cast<size_t>(s)]) {
            const Status status = ingestor.Push(update);
            DCS_CHECK(status.ok());
          }
        }
      });
    }
    for (std::thread& producer : producers) producer.join();
    ASSERT_TRUE(ingestor.Barrier().ok());
    EXPECT_EQ(ingestor.snapshot()->digest, reference)
        << "inserters=" << inserters;
  }
}

TEST(StreamIngestorTest, RejectsInvalidEndpoints) {
  StreamIngestor ingestor(8, {});
  EXPECT_EQ(ingestor.PushInsert(-1, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor.PushInsert(0, 8).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor.PushInsert(5, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor.updates_accepted(), 0);
}

TEST(StreamIngestorTest, RejectsDeleteOfNeverInsertedEdge) {
  StreamIngestor ingestor(8, {});
  EXPECT_EQ(ingestor.PushDelete(1, 2).code(),
            StatusCode::kFailedPrecondition);
  // The rejected delete never reached a sketch: the sealed state is empty.
  ASSERT_TRUE(ingestor.Barrier().ok());
  EXPECT_EQ(ingestor.snapshot()->digest, StreamIngestor(8, {}).snapshot()->digest);
}

TEST(StreamIngestorTest, DeleteValidationTracksMultiplicity) {
  StreamIngestor ingestor(8, {});
  ASSERT_TRUE(ingestor.PushInsert(1, 2).ok());
  ASSERT_TRUE(ingestor.PushInsert(2, 1).ok());  // parallel edge, canonical
  ASSERT_TRUE(ingestor.PushDelete(1, 2).ok());
  ASSERT_TRUE(ingestor.PushDelete(2, 1).ok());
  EXPECT_EQ(ingestor.PushDelete(1, 2).code(),
            StatusCode::kFailedPrecondition);
  // Re-inserting revives the edge for one more delete.
  ASSERT_TRUE(ingestor.PushInsert(1, 2).ok());
  ASSERT_TRUE(ingestor.PushDelete(1, 2).ok());
}

TEST(StreamIngestorTest, ShutdownDrainsSealsAndRejectsLatePushes) {
  const int n = 24;
  const std::vector<EdgeUpdate> updates = Workload(n, 400, 31);
  StreamIngestorOptions options;
  options.num_shards = 4;
  options.gutter_capacity = 32;  // leaves buffered updates for the drain
  options.rounds = 4;
  options.seed = 31;
  StreamIngestor ingestor(n, options);
  for (const EdgeUpdate& update : updates) {
    ASSERT_TRUE(ingestor.Push(update).ok());
  }
  const auto final_epoch = ingestor.Shutdown();
  ASSERT_TRUE(final_epoch.ok()) << final_epoch.status().ToString();
  EXPECT_TRUE(ingestor.draining());
  // Nothing buffered was lost: the final snapshot holds every accepted
  // update and matches the serial ground truth bit for bit.
  EXPECT_EQ(ingestor.snapshot()->epoch, *final_epoch);
  EXPECT_EQ(ingestor.snapshot()->updates_applied,
            static_cast<int64_t>(updates.size()));
  EXPECT_EQ(ingestor.snapshot()->digest, SerialDigest(n, 4, 31, updates));
  // Draining means draining: late pushes are cleanly refused.
  EXPECT_EQ(ingestor.PushInsert(0, 1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ingestor.snapshot()->updates_applied,
            static_cast<int64_t>(updates.size()));
}

TEST(StreamIngestorTest, ShutdownUnderConcurrentProducersLosesNothing) {
  // Producers race the drain barrier. The contract: every Push that
  // returned OK is in the final sealed epoch; every Push after the barrier
  // is kUnavailable; nothing is silently dropped either way.
  const int n = 32;
  StreamIngestorOptions options;
  options.num_shards = 4;
  options.gutter_capacity = 16;
  options.seed = 37;
  StreamIngestor ingestor(n, options);
  std::atomic<int64_t> accepted{0};
  std::atomic<bool> saw_unavailable{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(SubtaskSeed(41, p));
      // Insert-only: admission can't reject for multiplicity, so the only
      // legal non-OK outcome is the drain refusal.
      for (int i = 0; i < 4000; ++i) {
        const int u = static_cast<int>(rng.UniformInt(n));
        int v = u;
        while (v == u) v = static_cast<int>(rng.UniformInt(n));
        const Status status = ingestor.PushInsert(u, v);
        if (status.ok()) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
          saw_unavailable.store(true);
          break;
        }
      }
    });
  }
  // Let the producers get going, then pull the plug mid-stream.
  while (accepted.load() < 400) std::this_thread::yield();
  const auto final_epoch = ingestor.Shutdown();
  for (std::thread& producer : producers) producer.join();
  ASSERT_TRUE(final_epoch.ok()) << final_epoch.status().ToString();
  EXPECT_EQ(ingestor.snapshot()->epoch, *final_epoch);
  EXPECT_EQ(ingestor.snapshot()->updates_applied, accepted.load());
  EXPECT_EQ(ingestor.updates_accepted(), accepted.load());
}

TEST(StreamIngestorTest, EpochsAreMonotonicAndSnapshotsAreStable) {
  const int n = 16;
  StreamIngestorOptions options;
  options.rounds = 4;
  StreamIngestor ingestor(n, options);
  EXPECT_EQ(ingestor.epoch(), 0);

  ASSERT_TRUE(ingestor.PushInsert(0, 1).ok());
  const auto e1 = ingestor.Barrier();
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1);
  const std::shared_ptr<const StreamSnapshot> sealed = ingestor.snapshot();
  EXPECT_EQ(sealed->epoch, 1);
  EXPECT_EQ(sealed->updates_applied, 1);
  const uint64_t sealed_digest = sealed->digest;

  // Ingestion after the barrier must not disturb the held snapshot.
  ASSERT_TRUE(ingestor.PushInsert(2, 3).ok());
  ASSERT_TRUE(ingestor.PushInsert(4, 5).ok());
  EXPECT_EQ(sealed->digest, sealed_digest);
  EXPECT_EQ(sealed->updates_applied, 1);

  const auto e2 = ingestor.Barrier();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 2);
  EXPECT_EQ(ingestor.snapshot()->updates_applied, 3);
  EXPECT_GT(ingestor.snapshot()->epoch, sealed->epoch);
}

TEST(StreamIngestorTest, SnapshotTracksConnectivity) {
  const int n = 12;
  StreamIngestorOptions options;
  options.num_shards = 3;
  StreamIngestor ingestor(n, options);
  EXPECT_EQ(ingestor.snapshot()->components, n);
  // A path 0-1-...-11 connects everything.
  for (int v = 0; v + 1 < n; ++v) {
    ASSERT_TRUE(ingestor.PushInsert(v, v + 1).ok());
  }
  ASSERT_TRUE(ingestor.Barrier().ok());
  EXPECT_TRUE(ingestor.snapshot()->connected);
  EXPECT_EQ(ingestor.snapshot()->components, 1);
  // Deleting a path edge splits it in two.
  ASSERT_TRUE(ingestor.PushDelete(5, 6).ok());
  ASSERT_TRUE(ingestor.Barrier().ok());
  EXPECT_FALSE(ingestor.snapshot()->connected);
  EXPECT_EQ(ingestor.snapshot()->components, 2);
}

TEST(StreamIngestorTest, KSnapshotCertificateAndMinCut) {
  // A 3-bridge dumbbell through the k = 5 ingestor: min cut 3, then 2
  // after one bridge delete.
  const UndirectedGraph g = DumbbellGraph(6, 3);
  StreamIngestorOptions options;
  options.num_shards = 2;
  options.k = 5;
  StreamIngestor ingestor(12, options);
  for (const Edge& e : g.edges()) {
    ASSERT_TRUE(ingestor.PushInsert(e.src, e.dst).ok());
  }
  ASSERT_TRUE(ingestor.Barrier().ok());
  ASSERT_TRUE(ingestor.snapshot()->certificate.has_value());
  EXPECT_DOUBLE_EQ(ingestor.snapshot()->min_cut_up_to_k, 3.0);
  ASSERT_TRUE(ingestor.PushDelete(0, 6).ok());
  ASSERT_TRUE(ingestor.Barrier().ok());
  EXPECT_DOUBLE_EQ(ingestor.snapshot()->min_cut_up_to_k, 2.0);
}

TEST(StreamIngestorTest, EpochCutOracleThroughCutQueryService) {
  const UndirectedGraph g = DumbbellGraph(6, 3);
  StreamIngestorOptions options;
  options.k = 5;
  StreamIngestor ingestor(12, options);
  CutQueryService service(CutQueryServiceOptions{});
  // Epoch answers change at barriers, so the oracle must not be cached.
  const auto object = service.RegisterOracle(ingestor.EpochCutOracle(),
                                             /*cacheable=*/false);
  const VertexSet left_half = MakeVertexSet(12, {0, 1, 2, 3, 4, 5});

  // Epoch 0: nothing ingested, the cut is empty.
  EXPECT_DOUBLE_EQ(service.AnswerBatch({{object, left_half}})[0], 0.0);

  for (const Edge& e : g.edges()) {
    ASSERT_TRUE(ingestor.PushInsert(e.src, e.dst).ok());
  }
  // Not sealed yet: queries still see epoch 0.
  EXPECT_DOUBLE_EQ(service.AnswerBatch({{object, left_half}})[0], 0.0);
  ASSERT_TRUE(ingestor.Barrier().ok());
  // Sealed: the certificate preserves the 3-bridge cut exactly (< k).
  EXPECT_DOUBLE_EQ(service.AnswerBatch({{object, left_half}})[0], 3.0);
}

// --- The replayable binary stream format. ---

TEST(BinaryStreamTest, RoundTripsThroughBytes) {
  BinaryStreamWriter writer(16);
  writer.Append(EdgeUpdate{1, 2, false});
  writer.Append(EdgeUpdate{5, 3, false});
  writer.Append(EdgeUpdate{1, 2, true});
  BitWriter bits;
  writer.Seal(bits);
  BitReader bit_reader(bits.bytes());
  auto reader = BinaryStreamReader::FromBytes(bit_reader);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_vertices(), 16);
  EXPECT_EQ(reader->update_count(), 3);
  const auto first = reader->Next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->u, 1);
  EXPECT_EQ(first->v, 2);
  EXPECT_FALSE(first->is_delete);
  ASSERT_TRUE(reader->Next().ok());
  const auto third = reader->Next();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->is_delete);
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(reader->Next().status().code(), StatusCode::kOutOfRange);
}

TEST(BinaryStreamTest, RoundTripsThroughFile) {
  const std::string path = testing::TempDir() + "/updates.bin";
  Rng rng(13);
  const std::vector<EdgeUpdate> updates = RandomUpdateStream(24, 200, 0.2, rng);
  BinaryStreamWriter writer(24);
  for (const EdgeUpdate& update : updates) writer.Append(update);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto reader = BinaryStreamReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->update_count(), static_cast<int64_t>(updates.size()));
  for (const EdgeUpdate& expected : updates) {
    const auto got = reader->Next();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->u, expected.u);
    EXPECT_EQ(got->v, expected.v);
    EXPECT_EQ(got->is_delete, expected.is_delete);
  }
}

TEST(BinaryStreamTest, MissingFileIsNotFound) {
  EXPECT_EQ(BinaryStreamReader::FromFile("/nonexistent/updates.bin")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(BinaryStreamTest, EveryBitFlipIsDetected) {
  BinaryStreamWriter writer(8);
  writer.Append(EdgeUpdate{0, 1, false});
  writer.Append(EdgeUpdate{1, 2, false});
  BitWriter bits;
  writer.Seal(bits);
  for (size_t byte = 0; byte < bits.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = bits.bytes();
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      BitReader reader(corrupt);
      auto stream = BinaryStreamReader::FromBytes(reader);
      if (!stream.ok()) continue;  // rejected at the envelope: detected
      // If the envelope survived (flip in zero padding), the records must
      // still parse to something valid or fail — never abort.
      while (!stream->AtEnd()) {
        if (!stream->Next().ok()) break;
      }
    }
  }
}

TEST(BinaryStreamTest, ChecksumCatchesPayloadFlip) {
  BinaryStreamWriter writer(8);
  writer.Append(EdgeUpdate{0, 1, false});
  BitWriter bits;
  writer.Seal(bits);
  std::vector<uint8_t> corrupt = bits.bytes();
  corrupt[corrupt.size() / 2] ^= 0x10;
  BitReader reader(corrupt);
  EXPECT_EQ(BinaryStreamReader::FromBytes(reader).status().code(),
            StatusCode::kDataLoss);
}

TEST(BinaryStreamTest, TruncationIsDataLoss) {
  BinaryStreamWriter writer(8);
  for (int i = 0; i < 6; ++i) {
    writer.Append(EdgeUpdate{0, static_cast<VertexId>(i + 1), false});
  }
  BitWriter bits;
  writer.Seal(bits);
  for (size_t keep = 0; keep < bits.bytes().size(); keep += 3) {
    std::vector<uint8_t> truncated(bits.bytes().begin(),
                                   bits.bytes().begin() +
                                       static_cast<std::ptrdiff_t>(keep));
    BitReader reader(truncated);
    EXPECT_EQ(BinaryStreamReader::FromBytes(reader).status().code(),
              StatusCode::kDataLoss)
        << "kept " << keep << " bytes";
  }
}

TEST(BinaryStreamTest, ReplayThroughIngestorMatchesDirectPush) {
  const int n = 32;
  const std::vector<EdgeUpdate> updates = Workload(n, 400, 29);
  BinaryStreamWriter writer(n);
  for (const EdgeUpdate& update : updates) writer.Append(update);
  BitWriter bits;
  writer.Seal(bits);
  BitReader bit_reader(bits.bytes());
  auto reader = BinaryStreamReader::FromBytes(bit_reader);
  ASSERT_TRUE(reader.ok());

  StreamIngestorOptions options;
  options.num_shards = 2;
  options.rounds = 4;
  options.seed = 31;
  StreamIngestor ingestor(n, options);
  const auto applied = ReplayStream(*reader, ingestor, /*updates_per_epoch=*/100);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, static_cast<int64_t>(updates.size()));
  EXPECT_GE(ingestor.epoch(), 4);
  EXPECT_EQ(ingestor.snapshot()->digest, SerialDigest(n, 4, 31, updates));
}

TEST(BinaryStreamTest, RandomUpdateStreamPrefixesAreAdmissible) {
  // Every delete in a generated stream targets a currently-live edge, so a
  // fresh ingestor accepts the whole stream.
  Rng rng(37);
  const std::vector<EdgeUpdate> updates = RandomUpdateStream(16, 600, 0.45, rng);
  StreamIngestor ingestor(16, {});
  for (const EdgeUpdate& update : updates) {
    ASSERT_TRUE(ingestor.Push(update).ok());
  }
}

}  // namespace
}  // namespace dcs