// Section 3 (Theorem 1.1 / Lemma 3.3): the for-each lower-bound encoding.
// Verifies the construction's graph properties (Figure 1 anatomy, balance
// certificate), exact decodability of every bit via 4 cut queries, the
// ⟨w, M_t⟩ = z_t/ε identity, and the error threshold at which decoding
// collapses — the operational content of the lower bound.

#include "lowerbound/foreach_encoding.h"

#include <cmath>
#include <set>

#include "graph/balance.h"
#include "graph/connectivity.h"
#include "util/hadamard.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

ForEachLowerBoundParams SmallParams() {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  return params;
}

TEST(ForEachParamsTest, DerivedQuantities) {
  const ForEachLowerBoundParams params = SmallParams();
  EXPECT_EQ(params.layer_size(), 16);
  EXPECT_EQ(params.num_vertices(), 32);
  EXPECT_EQ(params.bits_per_cluster_pair(), 49);
  EXPECT_EQ(params.cluster_pairs_per_layer(), 4);
  EXPECT_EQ(params.total_bits(), 196);
  EXPECT_DOUBLE_EQ(params.beta(), 4.0);
  EXPECT_DOUBLE_EQ(params.backward_weight(), 0.25);
}

TEST(ForEachParamsTest, BitLocationCoversAllPositions) {
  ForEachLowerBoundParams params = SmallParams();
  params.num_layers = 3;
  std::set<std::tuple<int, int, int, int64_t>> seen;
  for (int64_t q = 0; q < params.total_bits(); ++q) {
    const ForEachBitLocation loc = LocateForEachBit(params, q);
    EXPECT_GE(loc.layer_pair, 0);
    EXPECT_LT(loc.layer_pair, 2);
    EXPECT_LT(loc.left_cluster, params.sqrt_beta);
    EXPECT_LT(loc.right_cluster, params.sqrt_beta);
    EXPECT_LT(loc.tensor_row, params.bits_per_cluster_pair());
    seen.insert({loc.layer_pair, loc.left_cluster, loc.right_cluster,
                 loc.tensor_row});
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), params.total_bits());
}

TEST(ForEachEncoderTest, GraphShape) {
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(1);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  const auto encoding = encoder.Encode(s);
  EXPECT_EQ(encoding.graph.num_vertices(), 32);
  // One layer pair: 16×16 forward + 16×16 backward edges.
  EXPECT_EQ(encoding.graph.num_edges(), 512);
  EXPECT_TRUE(IsStronglyConnected(encoding.graph));
}

TEST(ForEachEncoderTest, ForwardWeightsInPrescribedRange) {
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(2);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const double base = params.forward_base_weight();
  const int k = params.layer_size();
  for (const Edge& e : encoding.graph.edges()) {
    if (e.src < k && e.dst >= k) {
      // Forward edge: weight in [c₁ln(1/ε), 3c₁ln(1/ε)].
      EXPECT_GE(e.weight, base / 2 - 1e-9);
      EXPECT_LE(e.weight, 1.5 * base + 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(e.weight, params.backward_weight());
    }
  }
}

TEST(ForEachEncoderTest, BalanceCertificateIsBetaLogOneOverEps) {
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(3);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const auto certificate = PerEdgeBalanceCertificate(encoding.graph);
  ASSERT_TRUE(certificate.has_value());
  // Max ratio = 3c₁ln(1/ε) / (1/β) = 3c₁β·ln(1/ε) — the paper's
  // O(β·log(1/ε)) balance.
  const double bound = 3 * params.c1 * params.beta() *
                       std::log(params.inv_epsilon);
  EXPECT_LE(*certificate, bound + 1e-9);
  EXPECT_GE(*certificate, bound / 3);
}

TEST(ForEachDecoderTest, QueryPlanShape) {
  const ForEachLowerBoundParams params = SmallParams();
  const ForEachDecoder decoder(params);
  const auto plan = decoder.PlanQueries(17);
  const int half_cluster = params.inv_epsilon / 2;
  for (int query = 0; query < 4; ++query) {
    const VertexSet& side = plan.cut_sides[static_cast<size_t>(query)];
    EXPECT_TRUE(IsProperCutSide(side));
    // |A'| vertices from the left layer plus (k − |B'|) from the right.
    int left_members = 0;
    int right_members = 0;
    for (int v = 0; v < params.layer_size(); ++v) {
      left_members += side[static_cast<size_t>(v)] ? 1 : 0;
      right_members +=
          side[static_cast<size_t>(params.layer_size() + v)] ? 1 : 0;
    }
    EXPECT_EQ(left_members, half_cluster);
    EXPECT_EQ(right_members, params.layer_size() - half_cluster);
  }
}

TEST(ForEachDecoderTest, Figure1FixedBackwardWeight) {
  // Figure 1 / Lemma 3.3: the backward edges crossing S number
  // (k − 1/(2ε))² each of weight 1/β (two-layer case).
  const ForEachLowerBoundParams params = SmallParams();
  const ForEachDecoder decoder(params);
  const auto plan = decoder.PlanQueries(0);
  const double k = params.layer_size();
  const double half = params.inv_epsilon / 2.0;
  const double expected = (k - half) * (k - half) * params.backward_weight();
  for (int query = 0; query < 4; ++query) {
    EXPECT_NEAR(plan.fixed_weights[static_cast<size_t>(query)], expected,
                1e-9);
  }
}

TEST(ForEachDecoderTest, Figure1CutValueMagnitudes) {
  // The queried cut value is Θ(log(1/ε)/ε²): forward part
  // |A||B|·Θ(log(1/ε)) plus the fixed backward part Θ(1/ε²).
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(4);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);
  const auto plan = decoder.PlanQueries(11);
  const double half = params.inv_epsilon / 2.0;
  const double base = params.forward_base_weight();
  for (int query = 0; query < 4; ++query) {
    const double cut =
        encoding.graph.CutWeight(plan.cut_sides[static_cast<size_t>(query)]);
    const double forward =
        cut - plan.fixed_weights[static_cast<size_t>(query)];
    // Forward part: |A||B| edges with weights in [base/2, 1.5·base].
    EXPECT_GE(forward, half * half * base / 2 - 1e-6);
    EXPECT_LE(forward, half * half * base * 1.5 + 1e-6);
  }
}

TEST(ForEachDecoderTest, InnerProductIdentityWithExactOracle) {
  // ⟨w, M_t⟩ = z_t/ε exactly (Section 3's key identity).
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(5);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  const auto encoding = encoder.Encode(s);
  ASSERT_EQ(encoding.failed_clusters, 0);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  for (int64_t q = 0; q < params.total_bits(); q += 13) {
    const double estimate = decoder.EstimateInnerProduct(q, oracle);
    EXPECT_NEAR(estimate,
                static_cast<double>(s[static_cast<size_t>(q)]) *
                    params.inv_epsilon,
                1e-6)
        << "bit " << q;
  }
}

TEST(ForEachDecoderTest, QueryPlanMatchesDirectCrossWeights) {
  // The alternating sum over the four planned cuts equals the direct
  // tensor inner product Σ sign·w(A', B') computed from the graph itself —
  // verifying the planned vertex sets are exactly the proof's A/B sets.
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(50);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);
  const ForEachEncoder encoder(params);
  for (int64_t q : {3, 77, 150}) {
    const ForEachBitLocation loc = LocateForEachBit(params, q);
    const auto plan = decoder.PlanQueries(q);
    // Rebuild A, B from the tensor factors directly.
    const TensorSignMatrix tensor(3);  // log2(8)
    const std::vector<int8_t> h_a = tensor.LeftFactor(loc.tensor_row);
    const std::vector<int8_t> h_b = tensor.RightFactor(loc.tensor_row);
    double direct = 0;
    const int signs[4] = {+1, -1, -1, +1};
    for (int query = 0; query < 4; ++query) {
      const bool comp_a = (query == 1 || query == 3);
      const bool comp_b = (query == 2 || query == 3);
      VertexSet from(static_cast<size_t>(params.num_vertices()), 0);
      VertexSet to(static_cast<size_t>(params.num_vertices()), 0);
      for (int u = 0; u < params.inv_epsilon; ++u) {
        if ((h_a[static_cast<size_t>(u)] > 0) != comp_a) {
          from[static_cast<size_t>(
              encoder.VertexOf(loc.layer_pair, loc.left_cluster, u))] = 1;
        }
      }
      for (int v = 0; v < params.inv_epsilon; ++v) {
        if ((h_b[static_cast<size_t>(v)] > 0) != comp_b) {
          to[static_cast<size_t>(encoder.VertexOf(
              loc.layer_pair + 1, loc.right_cluster, v))] = 1;
        }
      }
      direct += signs[query] * encoding.graph.CrossWeight(from, to);
    }
    const CutOracle oracle = ExactCutOracle(encoding.graph);
    EXPECT_NEAR(decoder.EstimateInnerProduct(q, oracle), direct, 1e-9)
        << "bit " << q;
  }
}

TEST(ForEachDecoderTest, ExactOracleDecodesEveryBit) {
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(6);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  ASSERT_EQ(encoding.failed_clusters, 0);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  for (int64_t q = 0; q < params.total_bits(); ++q) {
    EXPECT_EQ(decoder.DecodeBit(q, oracle), s[static_cast<size_t>(q)])
        << "bit " << q;
  }
}

TEST(ForEachDecoderTest, MultiLayerDecoding) {
  ForEachLowerBoundParams params = SmallParams();
  params.num_layers = 4;
  Rng rng(7);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  ASSERT_EQ(encoding.failed_clusters, 0);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  // Probe bits from every layer pair.
  for (int64_t q = 0; q < params.total_bits(); q += 29) {
    EXPECT_EQ(decoder.DecodeBit(q, oracle), s[static_cast<size_t>(q)])
        << "bit " << q;
  }
}

TEST(ForEachDecoderTest, SurvivesSmallOracleError) {
  // With relative error well below c₂·ε/ln(1/ε) the decoder still works.
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(8);
  auto factory = [&rng](const DirectedGraph& graph) {
    return MaximalNoiseCutOracle(graph, 0.004, rng);
  };
  Rng trial_rng(9);
  const ForEachTrialResult result =
      RunForEachTrial(params, 150, trial_rng, factory);
  EXPECT_GE(result.accuracy(), 0.95);
}

TEST(ForEachDecoderTest, CollapsesUnderLargeOracleError) {
  // With relative error ≫ ε the additive noise Θ(δ·log(1/ε)/ε²) swamps the
  // Θ(1/ε) signal: accuracy falls to a coin flip. This is the lower bound's
  // mechanism made operational.
  const ForEachLowerBoundParams params = SmallParams();
  Rng rng(10);
  auto factory = [&rng](const DirectedGraph& graph) {
    return MaximalNoiseCutOracle(graph, 0.3, rng);
  };
  Rng trial_rng(11);
  const ForEachTrialResult result =
      RunForEachTrial(params, 200, trial_rng, factory);
  // With +/-delta two-point noise the 4-query alternating sum cancels with
  // probability 3/8, so the floor is ~0.375 + 0.625/2 ~ 0.69, not 0.5 —
  // still far below the clean-oracle accuracy of ~1.0.
  EXPECT_LE(result.accuracy(), 0.85);
  EXPECT_GE(result.accuracy(), 0.3);
}

TEST(ForEachTrialTest, ExactOracleTrialIsNearPerfect) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 3;
  params.num_layers = 3;
  Rng trial_rng(12);
  const ForEachTrialResult result = RunForEachTrial(
      params, 100, trial_rng,
      [](const DirectedGraph& graph) { return ExactCutOracle(graph); });
  EXPECT_GE(result.accuracy(), 0.95);
}

}  // namespace
}  // namespace dcs
