// ℓ₀-samplers and the AGM connectivity sketch: exact 1-sparse recovery,
// sampling correctness under insertions/deletions, linearity/mergeability,
// and Boruvka spanning-forest extraction.

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "mincut/stoer_wagner.h"
#include "gtest/gtest.h"
#include "stream/agm_sketch.h"
#include "stream/l0_sampler.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(OneSparseRecoveryTest, RecoversSingleCoordinate) {
  OneSparseRecovery recovery(12345);
  recovery.Update(42, 7);
  const auto sample = recovery.Recover();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 42);
  EXPECT_EQ(sample->value, 7);
}

TEST(OneSparseRecoveryTest, NegativeValue) {
  OneSparseRecovery recovery(999);
  recovery.Update(5, -3);
  const auto sample = recovery.Recover();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 5);
  EXPECT_EQ(sample->value, -3);
}

TEST(OneSparseRecoveryTest, CancellationYieldsZero) {
  OneSparseRecovery recovery(54321);
  recovery.Update(10, 4);
  recovery.Update(10, -4);
  EXPECT_TRUE(recovery.IsZero());
  EXPECT_FALSE(recovery.Recover().has_value());
}

TEST(OneSparseRecoveryTest, RejectsTwoSparseVectors) {
  OneSparseRecovery recovery(77777);
  recovery.Update(3, 1);
  recovery.Update(9, 1);
  EXPECT_FALSE(recovery.Recover().has_value());
  EXPECT_FALSE(recovery.IsZero());
}

TEST(OneSparseRecoveryTest, RejectsManySparseVectors) {
  OneSparseRecovery recovery(31337);
  for (int i = 0; i < 50; ++i) recovery.Update(i * 3, 1 + (i % 5));
  EXPECT_FALSE(recovery.Recover().has_value());
}

TEST(OneSparseRecoveryTest, MergeCancelsAcrossInstances) {
  OneSparseRecovery a(2024);
  OneSparseRecovery b(2024);
  a.Update(8, 5);
  a.Update(15, 2);
  b.Update(15, -2);
  a.MergeFrom(b);
  const auto sample = a.Recover();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 8);
  EXPECT_EQ(sample->value, 5);
}

TEST(L0SamplerTest, SamplesTheOnlyCoordinate) {
  L0Sampler sampler(1000, 7);
  sampler.Update(123, 9);
  const auto sample = sampler.Sample();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 123);
  EXPECT_EQ(sample->value, 9);
}

TEST(L0SamplerTest, ZeroVectorSamplesNothing) {
  L0Sampler sampler(64, 3);
  EXPECT_TRUE(sampler.AppearsZero());
  EXPECT_FALSE(sampler.Sample().has_value());
  sampler.Update(10, 2);
  sampler.Update(10, -2);
  EXPECT_TRUE(sampler.AppearsZero());
  EXPECT_FALSE(sampler.Sample().has_value());
}

TEST(L0SamplerTest, ReturnsOnlyRealCoordinates) {
  // Whatever the sampler returns must be a coordinate that is actually
  // nonzero with its true value.
  Rng rng(11);
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    L0Sampler sampler(5000, 100 + trial);
    std::map<int64_t, int64_t> truth;
    for (int u = 0; u < 40; ++u) {
      const int64_t index = static_cast<int64_t>(rng.UniformInt(5000));
      const int64_t delta = rng.UniformInRange(-3, 3);
      if (delta == 0) continue;
      truth[index] += delta;
      sampler.Update(index, delta);
    }
    const auto sample = sampler.Sample();
    if (!sample.has_value()) continue;
    ++successes;
    ASSERT_TRUE(truth.count(sample->index)) << "trial " << trial;
    EXPECT_EQ(truth[sample->index], sample->value) << "trial " << trial;
  }
  // ℓ₀-sampling succeeds with constant probability; expect a majority.
  EXPECT_GE(successes, 25);
}

TEST(L0SamplerTest, MergeEqualsCombinedStream) {
  L0Sampler a(256, 42);
  L0Sampler b(256, 42);
  L0Sampler combined(256, 42);
  a.Update(7, 2);
  combined.Update(7, 2);
  b.Update(91, 5);
  combined.Update(91, 5);
  b.Update(7, -2);
  combined.Update(7, -2);
  a.MergeFrom(b);
  const auto from_merge = a.Sample();
  const auto from_stream = combined.Sample();
  ASSERT_TRUE(from_merge.has_value());
  ASSERT_TRUE(from_stream.has_value());
  EXPECT_EQ(from_merge->index, from_stream->index);
  EXPECT_EQ(from_merge->value, from_stream->value);
  EXPECT_EQ(from_merge->index, 91);
}

TEST(AgmSketchTest, PathGraphSpanningForest) {
  AgmConnectivitySketch sketch(8, 0, 1);
  for (int v = 0; v + 1 < 8; ++v) sketch.AddEdge(v, v + 1);
  const std::vector<Edge> forest = sketch.SpanningForest();
  EXPECT_EQ(forest.size(), 7u);
  EXPECT_TRUE(sketch.IsConnected());
}

TEST(AgmSketchTest, ForestEdgesAreRealEdges) {
  Rng rng(2);
  const UndirectedGraph g =
      RandomUndirectedGraph(24, 0.2, 1.0, 1.0, true, rng);
  std::set<std::pair<int, int>> edge_set;
  for (const Edge& e : g.edges()) edge_set.insert({e.src, e.dst});
  const AgmConnectivitySketch sketch = SketchGraph(g, 0, 7);
  for (const Edge& e : sketch.SpanningForest()) {
    const auto key = e.src < e.dst ? std::make_pair(e.src, e.dst)
                                   : std::make_pair(e.dst, e.src);
    EXPECT_TRUE(edge_set.count(key))
        << "forest edge " << e.src << "-" << e.dst << " not in graph";
  }
}

TEST(AgmSketchTest, CountsComponents) {
  // Two disjoint triangles plus two isolated vertices: 4 components.
  AgmConnectivitySketch sketch(8, 0, 3);
  sketch.AddEdge(0, 1);
  sketch.AddEdge(1, 2);
  sketch.AddEdge(0, 2);
  sketch.AddEdge(3, 4);
  sketch.AddEdge(4, 5);
  sketch.AddEdge(3, 5);
  EXPECT_EQ(sketch.CountComponents(), 4);
  EXPECT_FALSE(sketch.IsConnected());
}

TEST(AgmSketchTest, DeletionsDisconnect) {
  // A path 0-1-2-3; delete the middle edge: two components.
  AgmConnectivitySketch sketch(4, 0, 5);
  sketch.AddEdge(0, 1);
  sketch.AddEdge(1, 2);
  sketch.AddEdge(2, 3);
  EXPECT_TRUE(sketch.IsConnected());
  sketch.RemoveEdge(1, 2);
  EXPECT_EQ(sketch.CountComponents(), 2);
}

TEST(AgmSketchTest, DeletionsRerouteThroughSurvivingEdges) {
  // A cycle survives any single deletion.
  AgmConnectivitySketch sketch(6, 0, 9);
  for (int v = 0; v < 6; ++v) sketch.AddEdge(v, (v + 1) % 6);
  sketch.RemoveEdge(2, 3);
  EXPECT_TRUE(sketch.IsConnected());
}

TEST(AgmSketchTest, MergeAcrossServersMatchesWholeGraph) {
  // Linearity: sketching two edge-disjoint halves on "servers" and merging
  // equals sketching the whole graph.
  Rng rng(4);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.25, 1.0, 1.0, true, rng);
  AgmConnectivitySketch server_a(20, 6, 11);
  AgmConnectivitySketch server_b(20, 6, 11);
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    if (i % 2 == 0) {
      server_a.AddEdge(e.src, e.dst);
    } else {
      server_b.AddEdge(e.src, e.dst);
    }
  }
  server_a.MergeFrom(server_b);
  EXPECT_EQ(server_a.CountComponents(), CountComponents(g));
}

TEST(AgmSketchTest, RandomGraphComponentCountsMatch) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(30, 0.06, 1.0, 1.0, false, rng);
    const AgmConnectivitySketch sketch = SketchGraph(g, 0, 100 + seed);
    EXPECT_EQ(sketch.CountComponents(), CountComponents(g))
        << "seed " << seed;
  }
}

TEST(AgmSketchTest, SizeIsPolylogPerVertex) {
  const AgmConnectivitySketch small(32, 0, 1);
  const AgmConnectivitySketch large(256, 0, 1);
  // Size per vertex grows polylogarithmically: less than 8x for an 8x
  // larger graph (it is O(log^2 n) words per vertex).
  const double small_per_vertex =
      static_cast<double>(small.SizeInBits()) / 32;
  const double large_per_vertex =
      static_cast<double>(large.SizeInBits()) / 256;
  EXPECT_LT(large_per_vertex, 3 * small_per_vertex);
  EXPECT_GT(large.MeasurementCount(), 0);
}

TEST(AgmSketchTest, ParallelEdgesAreTolerated) {
  AgmConnectivitySketch sketch(3, 0, 13);
  sketch.AddEdge(0, 1);
  sketch.AddEdge(0, 1);  // multiplicity 2
  sketch.AddEdge(1, 2);
  EXPECT_TRUE(sketch.IsConnected());
  sketch.RemoveEdge(0, 1);  // multiplicity back to 1
  EXPECT_TRUE(sketch.IsConnected());
}

TEST(AgmKConnectivityTest, CertificatePreservesSmallCuts) {
  // Dumbbell with 2 bridges, k = 4 > 2: the certificate must keep the
  // bridge cut at exactly 2.
  const UndirectedGraph g = DumbbellGraph(8, 2);
  AgmKConnectivitySketch sketch(16, 4, 0, 21);
  for (const Edge& e : g.edges()) sketch.AddEdge(e.src, e.dst);
  const UndirectedGraph certificate = sketch.Certificate();
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(certificate).value, 2.0);
  EXPECT_DOUBLE_EQ(sketch.MinCutUpToK(), 2.0);
  // At most k forests: k(n-1) edges.
  EXPECT_LE(certificate.num_edges(), 4 * 15);
}

TEST(AgmKConnectivityTest, SaturatesBetweenKAndTruth) {
  // K_10 has min cut 9 > k = 3: the certificate's min cut lands in
  // [k, true] — at least 3 (each of the 3 forests crosses every cut) and
  // at most 9 (the certificate is a subgraph).
  const UndirectedGraph g = CompleteGraph(10, 1.0);
  AgmKConnectivitySketch sketch(10, 3, 0, 22);
  for (const Edge& e : g.edges()) sketch.AddEdge(e.src, e.dst);
  const double estimate = sketch.MinCutUpToK();
  EXPECT_GE(estimate, 3.0);
  EXPECT_LE(estimate, 9.0);
}

TEST(AgmKConnectivityTest, MatchesOfflineSparseCertificateBound) {
  Rng rng(23);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.3, 1.0, 1.0, true, rng);
  const double true_mincut = StoerWagnerMinCut(g).value;
  AgmKConnectivitySketch sketch(20, 6, 0, 24);
  for (const Edge& e : g.edges()) sketch.AddEdge(e.src, e.dst);
  const double estimate = sketch.MinCutUpToK();
  // Never above the truth (subgraph); equals it whp when below k = 6.
  EXPECT_LE(estimate, true_mincut + 1e-9);
  if (true_mincut < 6.0) {
    EXPECT_NEAR(estimate, true_mincut, 1.0);
  }
}

TEST(AgmKConnectivityTest, TracksDeletions) {
  // A 3-bridge dumbbell loses one bridge: min cut 3 → 2.
  const UndirectedGraph g = DumbbellGraph(6, 3);
  AgmKConnectivitySketch sketch(12, 5, 0, 25);
  for (const Edge& e : g.edges()) sketch.AddEdge(e.src, e.dst);
  EXPECT_DOUBLE_EQ(sketch.MinCutUpToK(), 3.0);
  sketch.RemoveEdge(0, 6);  // bridge 0
  EXPECT_DOUBLE_EQ(sketch.MinCutUpToK(), 2.0);
}

TEST(AgmKConnectivityTest, MergeAcrossServers) {
  const UndirectedGraph g = DumbbellGraph(6, 2);
  AgmKConnectivitySketch a(12, 4, 0, 26);
  AgmKConnectivitySketch b(12, 4, 0, 26);
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    (i % 2 == 0 ? a : b).AddEdge(e.src, e.dst);
  }
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.MinCutUpToK(), 2.0);
}

// --- TryMergeFrom: incompatible sketches surface Status, never abort. ---

TEST(AgmSketchMergeTest, TryMergeFromRejectsVertexCountMismatch) {
  AgmConnectivitySketch a(16, 4, 7);
  const AgmConnectivitySketch b(17, 4, 7);
  const Status status = a.TryMergeFrom(b);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(AgmSketchMergeTest, TryMergeFromRejectsRoundsMismatch) {
  AgmConnectivitySketch a(16, 4, 7);
  const AgmConnectivitySketch b(16, 5, 7);
  EXPECT_EQ(a.TryMergeFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(AgmSketchMergeTest, TryMergeFromRejectsSeedMismatch) {
  AgmConnectivitySketch a(16, 4, 7);
  const AgmConnectivitySketch b(16, 4, 8);
  EXPECT_EQ(a.TryMergeFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(AgmSketchMergeTest, TryMergeFromOkMatchesMergeFrom) {
  AgmConnectivitySketch via_try(8, 3, 9);
  AgmConnectivitySketch via_abort(8, 3, 9);
  AgmConnectivitySketch other(8, 3, 9);
  via_try.AddEdge(0, 1);
  via_abort.AddEdge(0, 1);
  other.AddEdge(1, 2);
  ASSERT_TRUE(via_try.TryMergeFrom(other).ok());
  via_abort.MergeFrom(other);
  EXPECT_EQ(via_try.Digest(), via_abort.Digest());
}

TEST(AgmSketchMergeTest, KSketchTryMergeFromRejectsMismatch) {
  AgmKConnectivitySketch a(16, 3, 4, 7);
  EXPECT_EQ(a.TryMergeFrom(AgmKConnectivitySketch(17, 3, 4, 7)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.TryMergeFrom(AgmKConnectivitySketch(16, 2, 4, 7)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.TryMergeFrom(AgmKConnectivitySketch(16, 3, 5, 7)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.TryMergeFrom(AgmKConnectivitySketch(16, 3, 4, 8)).code(),
            StatusCode::kInvalidArgument);
}

TEST(AgmSketchMergeTest, KSketchFailedMergeLeavesStateUntouched) {
  // Compatibility is validated across all layers before any layer is
  // mutated, so a rejected merge cannot leave the sketch half-merged.
  AgmKConnectivitySketch a(16, 3, 4, 7);
  a.AddEdge(0, 1);
  const uint64_t before = a.Digest();
  AgmKConnectivitySketch mismatched(16, 3, 4, 8);
  mismatched.AddEdge(2, 3);
  ASSERT_FALSE(a.TryMergeFrom(mismatched).ok());
  EXPECT_EQ(a.Digest(), before);
}

// --- Digests: equal state ⇔ equal digest (up to hash collisions). ---

TEST(AgmSketchDigestTest, InsertionOrderDoesNotChangeDigest) {
  const UndirectedGraph g = DumbbellGraph(8, 2);
  AgmConnectivitySketch forward(16, 4, 11);
  AgmConnectivitySketch backward(16, 4, 11);
  for (const Edge& e : g.edges()) forward.AddEdge(e.src, e.dst);
  for (size_t i = g.edges().size(); i-- > 0;) {
    backward.AddEdge(g.edges()[i].src, g.edges()[i].dst);
  }
  EXPECT_EQ(forward.Digest(), backward.Digest());
}

TEST(AgmSketchDigestTest, InsertDeleteCancelsToEmptyDigest) {
  AgmConnectivitySketch sketch(16, 4, 11);
  const uint64_t empty = sketch.Digest();
  sketch.AddEdge(3, 9);
  EXPECT_NE(sketch.Digest(), empty);
  sketch.RemoveEdge(3, 9);
  EXPECT_EQ(sketch.Digest(), empty);
}

TEST(AgmSketchDigestTest, DigestCoversIdentity) {
  // Same (empty) measurement state, different identity: digests differ.
  EXPECT_NE(AgmConnectivitySketch(16, 4, 11).Digest(),
            AgmConnectivitySketch(16, 4, 12).Digest());
  EXPECT_NE(AgmConnectivitySketch(16, 4, 11).Digest(),
            AgmConnectivitySketch(16, 5, 11).Digest());
}

// --- Merge under deletion: edge-disjoint sharded maintenance with
// interleaved inserts/deletes merges bit-identically to serial. ---

TEST(AgmSketchMergeTest, ShardedMergeUnderDeletionMatchesSerial) {
  Rng rng(31);
  const int n = 48;
  AgmConnectivitySketch serial(n, 5, 13);
  AgmConnectivitySketch shard_a(n, 5, 13);
  AgmConnectivitySketch shard_b(n, 5, 13);
  // Random inserts with interleaved deletes of live edges; shards are
  // edge-disjoint (by canonical lower endpoint parity).
  std::vector<std::pair<VertexId, VertexId>> live;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(live.size()));
      const auto [u, v] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      serial.RemoveEdge(u, v);
      (std::min(u, v) % 2 == 0 ? shard_a : shard_b).RemoveEdge(u, v);
    } else {
      const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
      VertexId v = static_cast<VertexId>(rng.UniformInt(n - 1));
      if (v >= u) ++v;
      live.emplace_back(u, v);
      serial.AddEdge(u, v);
      (std::min(u, v) % 2 == 0 ? shard_a : shard_b).AddEdge(u, v);
    }
  }
  ASSERT_TRUE(shard_a.TryMergeFrom(shard_b).ok());
  EXPECT_EQ(shard_a.Digest(), serial.Digest());
}

TEST(AgmKConnectivityTest, ShardedMergeUnderDeletionMatchesSerial) {
  const UndirectedGraph g = DumbbellGraph(10, 3);
  AgmKConnectivitySketch serial(20, 4, 0, 17);
  AgmKConnectivitySketch shard_a(20, 4, 0, 17);
  AgmKConnectivitySketch shard_b(20, 4, 0, 17);
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    serial.AddEdge(e.src, e.dst);
    (i % 2 == 0 ? shard_a : shard_b).AddEdge(e.src, e.dst);
  }
  serial.RemoveEdge(0, 10);
  shard_a.RemoveEdge(0, 10);
  ASSERT_TRUE(shard_a.TryMergeFrom(shard_b).ok());
  EXPECT_EQ(shard_a.Digest(), serial.Digest());
  EXPECT_DOUBLE_EQ(shard_a.MinCutUpToK(), serial.MinCutUpToK());
}

// --- Regression: RemoveEdge of a never-inserted edge silently corrupts
// the raw sketch. The sketch is linear, so nothing aborts — the vector
// coordinate just goes negative and every query downstream is answered
// against a graph that never existed. This is exactly why the streaming
// ingestor validates deletes at admission (kFailedPrecondition) instead
// of letting them reach a sketch (see ingest_test.cc). ---

TEST(AgmSketchRegressionTest, RemoveNeverInsertedEdgeCorruptsRawSketch) {
  AgmConnectivitySketch sketch(16, 4, 19);
  const uint64_t clean = sketch.Digest();
  sketch.RemoveEdge(2, 7);  // never inserted: state is now corrupt...
  EXPECT_NE(sketch.Digest(), clean);
  sketch.AddEdge(2, 7);  // ...but linearity means a later insert cancels it
  EXPECT_EQ(sketch.Digest(), clean);
}

}  // namespace
}  // namespace dcs
