// Cross-module integration: the lower-bound decoders running against the
// library's *actual* sketches (not just synthetic oracles), and the full
// Lemma 5.6 reduction from 2-SUM to local-query min-cut with communication
// accounting.

#include <cmath>

#include "comm/two_sum.h"
#include "graph/balance.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "localquery/mincut_estimator.h"
#include "localquery/oracle.h"
#include "lowerbound/foreach_encoding.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/twosum_graph.h"
#include "sketch/directed_sketches.h"
#include "sketch/eulerian_sparsifier.h"
#include "sketch/exact_sketch.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(Integration, ForEachDecoderAgainstExactDirectedSketch) {
  // The ExactDirectedSketch is a legitimate (error-0) cut sketch; the
  // Section 3 decoder must read every bit back through its interface.
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  Rng rng(1);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  ASSERT_EQ(encoding.failed_clusters, 0);
  const ExactDirectedSketch sketch{DirectedGraph(encoding.graph)};
  const ForEachDecoder decoder(params);
  const CutOracle oracle = SketchCutOracle(sketch);
  for (int64_t q = 0; q < params.total_bits(); ++q) {
    EXPECT_EQ(decoder.DecodeBit(q, oracle), s[static_cast<size_t>(q)]);
  }
  // The information pigeonhole: an exact sketch of this graph costs at
  // least as many bits as the string it stores.
  EXPECT_GE(sketch.SizeInBits(), params.total_bits());
}

TEST(Integration, ForEachDecoderAgainstSampledDirectedSketch) {
  // A DirectedForEachSketch whose effective error is far below the decoding
  // threshold (dense sampling) must also decode correctly; this exercises
  // encoder → sketch → decoder end to end.
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  Rng rng(2);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  ASSERT_EQ(encoding.failed_clusters, 0);
  const double beta =
      PerEdgeBalanceCertificate(encoding.graph).value_or(params.beta());
  Rng sketch_rng(3);
  // Tiny epsilon → the sampler keeps every edge → exact answers.
  const DirectedForEachSketch sketch(encoding.graph, 0.01, beta, sketch_rng,
                                     /*oversample_c=*/50.0);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = SketchCutOracle(sketch);
  int correct = 0;
  for (int64_t q = 0; q < params.total_bits(); ++q) {
    if (decoder.DecodeBit(q, oracle) == s[static_cast<size_t>(q)]) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, params.total_bits());
}

TEST(Integration, ForAllDecoderAgainstDirectedForAllSketch) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  Rng rng(4);
  int correct = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    GapHammingParams gh;
    gh.num_strings = static_cast<int>(params.total_strings());
    gh.string_length = params.inv_epsilon_sq;
    gh.gap_c = params.gap_c;
    const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
    const DirectedGraph graph = ForAllEncoder(params).Encode(instance.s);
    Rng sketch_rng(trial + 100);
    const DirectedForAllSketch sketch(graph, 0.01, 2.0, sketch_rng, 50.0);
    const ForAllDecoder decoder(params);
    const bool decided = decoder.DecideFar(
        instance.index, instance.t, SketchCutOracle(sketch),
        ForAllDecoder::SubsetSelection::kGreedy);
    if (decided == instance.is_far) ++correct;
  }
  EXPECT_GE(correct, (trials * 4) / 5);
}

TEST(Integration, TwoSumToMinCutReductionEndToEnd) {
  // Lemma 5.6 / Theorem 1.3, operationally: solve a 2-SUM instance by
  // running the local-query min-cut estimator on G_{x,y} and converting the
  // estimate back; count the communication the queries would cost.
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 100;  // N = 400, ℓ = 20
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(5);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  const std::vector<uint8_t> x = ConcatenateStrings(instance.x);
  const std::vector<uint8_t> y = ConcatenateStrings(instance.y);
  const int total_int = IntersectionCount(x, y);
  ASSERT_LE(3 * total_int, 20);  // Lemma 5.5 hypothesis
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  Rng est_rng(6);
  const LocalQueryMinCutResult result = EstimateMinCutLocalQueries(
      g, 0.2, SearchMode::kModifiedConstantSearch, est_rng);
  // MINCUT = 2·r·α with r intersecting pairs; recover Σ DISJ.
  const double recovered_disjoint =
      params.num_pairs - result.estimate / (2.0 * params.alpha);
  EXPECT_NEAR(recovered_disjoint, instance.disjoint_count, 1.0);
  // The queries translate to a real communication budget (2 bits each).
  EXPECT_GT(result.communication_bits, 0);
  EXPECT_EQ(result.communication_bits,
            2 * (result.counts.neighbor + result.counts.adjacency));
}

TEST(Integration, ForAllDecoderAgainstDirectedImportanceSampler) {
  // Third sketch family through the Section 4 decoder: the direct directed
  // sparsifier is also a modular estimator, so the greedy Bob works.
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  Rng rng(40);
  int correct = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    GapHammingParams gh;
    gh.num_strings = static_cast<int>(params.total_strings());
    gh.string_length = params.inv_epsilon_sq;
    const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
    const DirectedGraph graph = ForAllEncoder(params).Encode(instance.s);
    Rng sketch_rng(trial + 900);
    const DirectedImportanceSamplerSketch sketch(graph, 0.05, 2.0,
                                                 sketch_rng, 50.0);
    const ForAllDecoder decoder(params);
    if (decoder.DecideFar(instance.index, instance.t,
                          SketchCutOracle(sketch),
                          ForAllDecoder::SubsetSelection::kGreedy) ==
        instance.is_far) {
      ++correct;
    }
  }
  EXPECT_GE(correct, (trials * 3) / 4);
}

TEST(Integration, EulerianSparsifierComposesWithDirectedSketch) {
  // Sparsify an Eulerian graph by cycles (stays exactly Eulerian), then
  // sketch the sparsifier: the imbalance half of the sketch is identically
  // zero and the estimate reduces to the symmetric half.
  Rng gen_rng(41);
  const DirectedGraph g = RandomEulerianDigraph(14, 50, 6, gen_rng);
  Rng sparsify_rng(42);
  const DirectedGraph sparse = SparsifyEulerian(g, 0.6, sparsify_rng);
  Rng sketch_rng(43);
  const DirectedForEachSketch sketch(sparse, 0.01, 1.0, sketch_rng, 50.0);
  Rng cut_rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    VertexSet side(14);
    for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    // Dense sampling → the sketch reproduces the sparsifier's cuts, which
    // are symmetric (Eulerian) in both directions.
    EXPECT_NEAR(sketch.EstimateCut(side), sparse.CutWeight(side), 1e-6);
    EXPECT_NEAR(sparse.CutWeight(side),
                sparse.CutWeight(ComplementSet(side)), 1e-9);
  }
}

TEST(Integration, ReversalPreservesLowerBoundDecoding) {
  // Reversing the construction graph swaps forward/backward roles; the
  // decoder on the reversed graph with complemented cut sides recovers the
  // same bits — a symmetry check of the whole Section 3 pipeline.
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  Rng rng(45);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const DirectedGraph reversed = encoding.graph.Reversed();
  const ForEachDecoder decoder(params);
  // Oracle over the reversed graph queried on complemented sides equals
  // the original forward cut: w_rev(S̄, S) = w(S, S̄).
  const CutOracle oracle = [&reversed](const VertexSet& side) {
    return reversed.CutWeight(ComplementSet(side));
  };
  for (int64_t q = 0; q < params.total_bits(); q += 3) {
    EXPECT_EQ(decoder.DecodeBit(q, oracle), s[static_cast<size_t>(q)]);
  }
}

TEST(Integration, ForEachInfoFormulaMatchesConstruction) {
  // The number of decodable bits tracks the Ω(n√β/ε) formula across a
  // parameter sweep (up to the (1−ε)² factor from (1/ε−1)² vs 1/ε²).
  for (int inv_eps : {4, 8}) {
    for (int sqrt_beta : {1, 2, 3}) {
      ForEachLowerBoundParams params;
      params.inv_epsilon = inv_eps;
      params.sqrt_beta = sqrt_beta;
      params.num_layers = 2;
      const double formula_half = params.info_formula() / 2;  // (ℓ−1)/ℓ
      const double ratio = static_cast<double>(params.total_bits()) /
                           formula_half;
      const double shrink = 1.0 - 1.0 / inv_eps;
      EXPECT_NEAR(ratio, shrink * shrink, 1e-9)
          << inv_eps << "," << sqrt_beta;
    }
  }
}

}  // namespace
}  // namespace dcs
