#include "graph/graph_io.h"

#include <sstream>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(GraphIoTest, DirectedRoundTrip) {
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(12, 0.4, 2.0, rng);
  std::stringstream stream;
  WriteDirectedGraphText(g, stream);
  const auto back = ReadDirectedGraphText(stream);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_vertices(), g.num_vertices());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  const VertexSet side = MakeVertexSet(12, {0, 4, 8});
  EXPECT_DOUBLE_EQ(back->CutWeight(side), g.CutWeight(side));
}

TEST(GraphIoTest, UndirectedRoundTrip) {
  Rng rng(2);
  const UndirectedGraph g =
      RandomUndirectedGraph(10, 0.5, 0.25, 4.0, true, rng);
  std::stringstream stream;
  WriteUndirectedGraphText(g, stream);
  const auto back = ReadUndirectedGraphText(stream);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(back->TotalWeight(), g.TotalWeight());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream(
      "# a graph\n\nU 3 2\n# first edge\n0 1 1.5\n\n1 2 2.5\n");
  const auto graph = ReadUndirectedGraphText(stream);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2);
  EXPECT_DOUBLE_EQ(graph->TotalWeight(), 4.0);
}

TEST(GraphIoTest, RejectsWrongTag) {
  std::stringstream stream("U 3 1\n0 1 1.0\n");
  EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
}

TEST(GraphIoTest, RejectsMalformedInputs) {
  {
    std::stringstream stream("D 3\n");  // missing edge count
    EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
  }
  {
    std::stringstream stream("D 3 1\n0 5 1.0\n");  // endpoint out of range
    EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
  }
  {
    std::stringstream stream("D 3 1\n0 0 1.0\n");  // self loop
    EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
  }
  {
    std::stringstream stream("D 3 1\n0 1 -2.0\n");  // negative weight
    EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
  }
  {
    std::stringstream stream("D 3 2\n0 1 1.0\n");  // truncated edge list
    EXPECT_FALSE(ReadDirectedGraphText(stream).ok());
  }
  {
    std::stringstream stream("");  // empty
    EXPECT_FALSE(ReadUndirectedGraphText(stream).ok());
  }
}

TEST(GraphIoTest, ErrorsCarryCodeAndLineNumber) {
  std::stringstream stream("D 3 2\n0 1 1.0\n0 9 1.0\n");
  const auto result = ReadDirectedGraphText(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The bad endpoint is on line 3 of the stream.
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(GraphIoTest, RejectsNaNWeight) {
  std::stringstream stream("U 3 1\n0 1 nan\n");
  const auto result = ReadUndirectedGraphText(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsInfiniteWeight) {
  std::stringstream stream("U 3 1\n0 1 inf\n");
  EXPECT_FALSE(ReadUndirectedGraphText(stream).ok());
}

TEST(GraphIoTest, TruncationReportsDataLoss) {
  std::stringstream stream("D 3 2\n0 1 1.0\n");
  const auto result = ReadDirectedGraphText(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(GraphIoTest, FileRoundTrip) {
  Rng rng(3);
  const UndirectedGraph g = DumbbellGraph(5, 2);
  const std::string path = "/tmp/dcs_graph_io_test.txt";
  ASSERT_TRUE(SaveUndirectedGraph(g, path).ok());
  const auto back = LoadUndirectedGraph(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadDirectedGraph("/nonexistent/nowhere.txt").ok());
}

}  // namespace
}  // namespace dcs
