#include "util/status.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorConstructorsCarryCodeAndMessage) {
  const std::vector<std::pair<Status, StatusCode>> cases = {
      {InvalidArgumentError("a"), StatusCode::kInvalidArgument},
      {OutOfRangeError("b"), StatusCode::kOutOfRange},
      {DataLossError("c"), StatusCode::kDataLoss},
      {NotFoundError("d"), StatusCode::kNotFound},
      {FailedPreconditionError("e"), StatusCode::kFailedPrecondition},
      {UnavailableError("f"), StatusCode::kUnavailable},
      {InternalError("g"), StatusCode::kInternal},
      {DeadlineExceededError("h"), StatusCode::kDeadlineExceeded},
      {ResourceExhaustedError("i"), StatusCode::kResourceExhausted},
  };
  for (const auto& [status, code] : cases) {
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), code);
    EXPECT_EQ(status.message().size(), 1u);
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(OkStatus().ToString(), "ok");
  const Status s = DataLossError("bad magic");
  EXPECT_NE(s.ToString().find(StatusCodeName(StatusCode::kDataLoss)),
            std::string::npos);
  EXPECT_NE(s.ToString().find("bad magic"), std::string::npos);
}

TEST(StatusTest, DeadlineExceededHasItsOwnCodeName) {
  const Status s = DeadlineExceededError("3 rounds spent");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            std::string("deadline_exceeded"));
  EXPECT_NE(s.ToString().find("deadline_exceeded"), std::string::npos);
  // Distinct from the transient kUnavailable: the retry budget itself is
  // gone, so callers must not re-issue.
  EXPECT_NE(s.code(), StatusCode::kUnavailable);
}

TEST(StatusTest, ResourceExhaustedHasItsOwnCodeName) {
  const Status s = ResourceExhaustedError("shard queue full");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            std::string("resource_exhausted"));
  EXPECT_NE(s.ToString().find("resource_exhausted"), std::string::npos);
  // Backpressure, not failure: the peer is healthy but full, so callers
  // back off and retry the same replica — distinct from kUnavailable,
  // which is what triggers failover.
  EXPECT_NE(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> result = NotFoundError("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(StatusOrTest, MoveOnlyValueMovesOut) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  const std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 7);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  const StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrDeathTest, ValueOfErrorChecks) {
  const StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH(result.value(), "CHECK");
}

TEST(StatusOrDeathTest, OkStatusIntoStatusOrChecks) {
  EXPECT_DEATH(StatusOr<int>{OkStatus()}, "CHECK");
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status ChainedCheck(int x) {
  DCS_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(ChainedCheck(1).ok());
  const Status s = ChainedCheck(-1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x;
}

StatusOr<int> DoubleIfPositive(int x) {
  DCS_ASSIGN_OR_RETURN(const int parsed, ParsePositive(x));
  return 2 * parsed;
}

TEST(StatusMacroTest, AssignOrReturnAssignsAndPropagates) {
  const StatusOr<int> ok = DoubleIfPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  const StatusOr<int> err = DoubleIfPositive(0);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusMacroTest, AssignOrReturnTwiceInOneFunction) {
  // The __LINE__-based temporary name must not collide.
  const auto sum = [](int a, int b) -> StatusOr<int> {
    DCS_ASSIGN_OR_RETURN(const int x, ParsePositive(a));
    DCS_ASSIGN_OR_RETURN(const int y, ParsePositive(b));
    return x + y;
  };
  EXPECT_EQ(sum(2, 3).value(), 5);
  EXPECT_FALSE(sum(2, -3).ok());
}

}  // namespace
}  // namespace dcs
