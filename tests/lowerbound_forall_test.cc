// Section 4 (Theorem 1.2 / Lemma 4.2): the for-all lower-bound encoding.
// Verifies the {1,2}/1/β weight structure, the 2β balance certificate,
// Bob's subset-selection decision procedure (enumeration and greedy modes),
// and the collapse of the decision under large oracle error.

#include "lowerbound/forall_encoding.h"

#include <set>

#include "graph/balance.h"
#include "graph/connectivity.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

ForAllLowerBoundParams SmallParams() {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 4;
  params.beta = 2;
  params.num_layers = 2;
  return params;
}

std::vector<std::vector<uint8_t>> SampleStrings(
    const ForAllLowerBoundParams& params, Rng& rng) {
  std::vector<std::vector<uint8_t>> strings;
  for (int64_t i = 0; i < params.total_strings(); ++i) {
    strings.push_back(rng.RandomBinaryStringWithWeight(
        params.inv_epsilon_sq, params.inv_epsilon_sq / 2));
  }
  return strings;
}

TEST(ForAllParamsTest, DerivedQuantities) {
  const ForAllLowerBoundParams params = SmallParams();
  EXPECT_EQ(params.layer_size(), 8);
  EXPECT_EQ(params.num_vertices(), 16);
  EXPECT_EQ(params.strings_per_layer_pair(), 16);
  EXPECT_EQ(params.total_strings(), 16);
  EXPECT_EQ(params.total_bits(), 64);
  EXPECT_DOUBLE_EQ(params.backward_weight(), 0.5);
}

TEST(ForAllParamsTest, StringLocationCoversAll) {
  ForAllLowerBoundParams params = SmallParams();
  params.num_layers = 3;
  std::set<std::tuple<int, int, int>> seen;
  for (int64_t q = 0; q < params.total_strings(); ++q) {
    const ForAllStringLocation loc = LocateForAllString(params, q);
    EXPECT_LT(loc.layer_pair, 2);
    EXPECT_LT(loc.left_index, params.layer_size());
    EXPECT_LT(loc.right_cluster, params.beta);
    seen.insert({loc.layer_pair, loc.left_index, loc.right_cluster});
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), params.total_strings());
}

TEST(ForAllEncoderTest, WeightsAreOneTwoAndOneOverBeta) {
  const ForAllLowerBoundParams params = SmallParams();
  Rng rng(1);
  const auto strings = SampleStrings(params, rng);
  const DirectedGraph graph = ForAllEncoder(params).Encode(strings);
  EXPECT_EQ(graph.num_vertices(), 16);
  EXPECT_EQ(graph.num_edges(), 128);  // 64 forward + 64 backward
  EXPECT_TRUE(IsStronglyConnected(graph));
  const int k = params.layer_size();
  int weight_two = 0;
  for (const Edge& e : graph.edges()) {
    if (e.src < k) {
      EXPECT_TRUE(e.weight == 1.0 || e.weight == 2.0);
      weight_two += e.weight == 2.0 ? 1 : 0;
    } else {
      EXPECT_DOUBLE_EQ(e.weight, params.backward_weight());
    }
  }
  // Every string has weight L/2, so exactly half the forward edges are 2.
  EXPECT_EQ(weight_two, 32);
}

TEST(ForAllEncoderTest, GraphIsTwoBetaBalanced) {
  const ForAllLowerBoundParams params = SmallParams();
  Rng rng(2);
  const DirectedGraph graph =
      ForAllEncoder(params).Encode(SampleStrings(params, rng));
  const auto certificate = PerEdgeBalanceCertificate(graph);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_DOUBLE_EQ(*certificate, 2.0 * params.beta);
  EXPECT_TRUE(VerifyBalanceExact(graph, 2.0 * params.beta));
}

TEST(ForAllEncoderTest, ForwardWeightsMatchStrings) {
  const ForAllLowerBoundParams params = SmallParams();
  Rng rng(3);
  const auto strings = SampleStrings(params, rng);
  const DirectedGraph graph = ForAllEncoder(params).Encode(strings);
  // Check string q=5: located at (p=0, i, j); forward edge weights from
  // ℓ_i into cluster j follow s+1.
  const ForAllStringLocation loc = LocateForAllString(params, 5);
  const int k = params.layer_size();
  const int cluster_base = (loc.layer_pair + 1) * k +
                           loc.right_cluster * params.inv_epsilon_sq;
  const VertexId left = loc.layer_pair * k + loc.left_index;
  for (int v = 0; v < params.inv_epsilon_sq; ++v) {
    double weight = -1;
    for (const Edge& e : graph.edges()) {
      if (e.src == left && e.dst == cluster_base + v) {
        weight = e.weight;
        break;
      }
    }
    EXPECT_DOUBLE_EQ(weight,
                     strings[5][static_cast<size_t>(v)] ? 2.0 : 1.0);
  }
}

// Maps a layer-local U subset and Bob's t to global vertex sets and checks
// the selected subsets of both modes have equal forward weight w(U, T).
TEST(ForAllDecoderTest, GreedyMatchesEnumerationOnExactOracle) {
  const ForAllLowerBoundParams params = SmallParams();
  Rng rng(4);
  const auto strings = SampleStrings(params, rng);
  const DirectedGraph graph = ForAllEncoder(params).Encode(strings);
  const ForAllDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(graph);
  const int k = params.layer_size();
  for (int64_t q : {0, 7, 15}) {
    const std::vector<uint8_t> t = Rng(q + 10).RandomBinaryStringWithWeight(
        params.inv_epsilon_sq, params.inv_epsilon_sq / 2);
    const VertexSet enum_u = decoder.SelectBestSubset(
        q, t, oracle, ForAllDecoder::SubsetSelection::kEnumerate);
    const VertexSet greedy_u = decoder.SelectBestSubset(
        q, t, oracle, ForAllDecoder::SubsetSelection::kGreedy);
    ASSERT_EQ(SetSize(enum_u), k / 2);
    ASSERT_EQ(SetSize(greedy_u), k / 2);
    // Equal objective value (tie-safe comparison): forward weight into T.
    const ForAllStringLocation loc = LocateForAllString(params, q);
    const int cluster_base = (loc.layer_pair + 1) * k +
                             loc.right_cluster * params.inv_epsilon_sq;
    auto globalize = [&](const VertexSet& u_local) {
      VertexSet global(static_cast<size_t>(params.num_vertices()), 0);
      for (int i = 0; i < k; ++i) {
        if (u_local[static_cast<size_t>(i)]) {
          global[static_cast<size_t>(loc.layer_pair * k + i)] = 1;
        }
      }
      return global;
    };
    VertexSet t_global(static_cast<size_t>(params.num_vertices()), 0);
    for (int v = 0; v < params.inv_epsilon_sq; ++v) {
      if (t[static_cast<size_t>(v)]) {
        t_global[static_cast<size_t>(cluster_base + v)] = 1;
      }
    }
    EXPECT_DOUBLE_EQ(graph.CrossWeight(globalize(enum_u), t_global),
                     graph.CrossWeight(globalize(greedy_u), t_global))
        << "string " << q;
  }
}

TEST(ForAllDecoderTest, ExactOracleTrialsSucceed) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  Rng rng(5);
  const ForAllTrialResult result = RunForAllTrials(
      params, 40, rng,
      [](const DirectedGraph& graph) { return ExactCutOracle(graph); },
      ForAllDecoder::SubsetSelection::kGreedy);
  EXPECT_GE(result.accuracy(), 0.85);
}

TEST(ForAllDecoderTest, EnumerationTrialsSucceed) {
  const ForAllLowerBoundParams params = SmallParams();
  Rng rng(6);
  const ForAllTrialResult result = RunForAllTrials(
      params, 40, rng,
      [](const DirectedGraph& graph) { return ExactCutOracle(graph); },
      ForAllDecoder::SubsetSelection::kEnumerate);
  EXPECT_GE(result.accuracy(), 0.8);
}

TEST(ForAllDecoderTest, MultiLayerTrialsSucceed) {
  ForAllLowerBoundParams params = SmallParams();
  params.num_layers = 3;
  Rng rng(7);
  const ForAllTrialResult result = RunForAllTrials(
      params, 30, rng,
      [](const DirectedGraph& graph) { return ExactCutOracle(graph); },
      ForAllDecoder::SubsetSelection::kGreedy);
  EXPECT_GE(result.accuracy(), 0.8);
}

TEST(ForAllDecoderTest, CollapsesUnderLargeOracleError) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  Rng noise_rng(8);
  auto factory = [&noise_rng](const DirectedGraph& graph) {
    return NoisyCutOracle(graph, 0.8, noise_rng);
  };
  Rng rng(9);
  const ForAllTrialResult result = RunForAllTrials(
      params, 60, rng, factory, ForAllDecoder::SubsetSelection::kGreedy);
  EXPECT_LE(result.accuracy(), 0.78);
  EXPECT_GE(result.accuracy(), 0.25);
}

}  // namespace
}  // namespace dcs
