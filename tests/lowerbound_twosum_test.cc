// Section 5.2 (Lemma 5.5, Figures 2–6): the G_{x,y} construction.
// Verifies the worked Figure 2 example, degree regularity, the witness cut,
// the MINCUT = 2·INT identity across random instances, and the
// 2γ-edge-disjoint-path cases of the connectivity proof.

#include "lowerbound/twosum_graph.h"

#include "comm/two_sum.h"
#include "graph/connectivity.h"
#include "gtest/gtest.h"
#include "mincut/dinic.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(TwoSumGraphTest, PerfectSquareRoot) {
  EXPECT_EQ(PerfectSquareRoot(1), 1);
  EXPECT_EQ(PerfectSquareRoot(9), 3);
  EXPECT_EQ(PerfectSquareRoot(144), 12);
  EXPECT_DEATH(PerfectSquareRoot(10), "CHECK");
}

TEST(TwoSumGraphTest, LayoutBlocks) {
  const TwoSumGraphLayout layout(3);
  EXPECT_EQ(layout.num_vertices(), 12);
  EXPECT_EQ(layout.a(0), 0);
  EXPECT_EQ(layout.a_prime(0), 3);
  EXPECT_EQ(layout.b(0), 6);
  EXPECT_EQ(layout.b_prime(2), 11);
  EXPECT_TRUE(layout.InA(2));
  EXPECT_TRUE(layout.InAPrime(4));
  EXPECT_TRUE(layout.InB(7));
  EXPECT_TRUE(layout.InBPrime(9));
}

TEST(TwoSumGraphTest, Figure2ExampleStructure) {
  // x = 000000100, y = 100010100: one intersection at x_{3,1} (0-based
  // (2,0)). MINCUT must be 2·INT = 2.
  const TwoSumExample example = Figure2Example();
  EXPECT_EQ(IntersectionCount(example.x, example.y), 1);
  const UndirectedGraph g = BuildTwoSumGraph(example.x, example.y);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 18);  // 2N = 18
  EXPECT_TRUE(IsConnected(g));
  const TwoSumGraphLayout layout(3);
  // The red crossing edges: (a_3, b'_1) and (b_3, a'_1).
  bool has_a3_bp1 = false;
  bool has_b3_ap1 = false;
  for (const Edge& e : g.edges()) {
    if ((e.src == layout.a(2) && e.dst == layout.b_prime(0)) ||
        (e.dst == layout.a(2) && e.src == layout.b_prime(0))) {
      has_a3_bp1 = true;
    }
    if ((e.src == layout.b(2) && e.dst == layout.a_prime(0)) ||
        (e.dst == layout.b(2) && e.src == layout.a_prime(0))) {
      has_b3_ap1 = true;
    }
  }
  EXPECT_TRUE(has_a3_bp1);
  EXPECT_TRUE(has_b3_ap1);
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 2.0);
}

TEST(TwoSumGraphTest, EveryVertexHasDegreeEll) {
  Rng rng(1);
  const int ell = 5;
  const std::vector<uint8_t> x = rng.RandomBinaryString(ell * ell);
  const std::vector<uint8_t> y = rng.RandomBinaryString(ell * ell);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.Degree(v), static_cast<double>(ell)) << "vertex " << v;
  }
}

TEST(TwoSumGraphTest, WitnessCutValueIsTwiceIntersection) {
  Rng rng(2);
  const int ell = 6;
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<uint8_t> x = rng.RandomBinaryString(ell * ell);
    const std::vector<uint8_t> y = rng.RandomBinaryString(ell * ell);
    const UndirectedGraph g = BuildTwoSumGraph(x, y);
    const TwoSumGraphLayout layout(ell);
    EXPECT_DOUBLE_EQ(g.CutWeight(layout.WitnessSide()),
                     2.0 * IntersectionCount(x, y));
  }
}

// Lemma 5.5: MINCUT(G_{x,y}) = 2·INT(x,y) when √N ≥ 3·INT(x,y).
TEST(TwoSumGraphTest, Lemma55OnRandomSparseIntersections) {
  Rng rng(3);
  // N = 49 (ℓ = 7), so INT up to 2 satisfies the √N ≥ 3·INT hypothesis.
  for (int target_int : {1, 2}) {
    for (int trial = 0; trial < 5; ++trial) {
      // Build strings with exactly target_int intersections.
      std::vector<uint8_t> x(49, 0), y(49, 0);
      const std::vector<int> shared = rng.RandomSubset(49, target_int);
      for (int pos : shared) {
        x[static_cast<size_t>(pos)] = 1;
        y[static_cast<size_t>(pos)] = 1;
      }
      // Extra non-intersecting ones.
      for (int i = 0; i < 49; ++i) {
        if (x[static_cast<size_t>(i)]) continue;
        if (rng.Bernoulli(0.3)) x[static_cast<size_t>(i)] = 1;
        // y stays 0 there to keep INT exact... unless x is 0.
      }
      for (int i = 0; i < 49; ++i) {
        if (!x[static_cast<size_t>(i)] && rng.Bernoulli(0.3)) {
          y[static_cast<size_t>(i)] = 1;
        }
      }
      ASSERT_EQ(IntersectionCount(x, y), target_int);
      const UndirectedGraph g = BuildTwoSumGraph(x, y);
      EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 2.0 * target_int);
    }
  }
}

TEST(TwoSumGraphTest, ZeroIntersectionDisconnects) {
  // With INT = 0 there are no crossing edges: A∪A' and B∪B' are separate
  // components and the min cut is 0 — DISJ is visible in the cut value.
  std::vector<uint8_t> x(16, 0), y(16, 0);
  for (int i = 0; i < 8; ++i) x[static_cast<size_t>(i)] = 1;
  for (int i = 8; i < 16; ++i) y[static_cast<size_t>(i)] = 1;
  ASSERT_EQ(IntersectionCount(x, y), 0);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 0.0);
}

// The connectivity cases of Lemma 5.5 (Figures 3–6): with γ = INT(x,y) and
// √N ≥ 3γ, every vertex pair has ≥ 2γ edge-disjoint paths.
TEST(TwoSumGraphTest, EdgeDisjointPathCases) {
  const int ell = 7;
  std::vector<uint8_t> x(49, 0), y(49, 0);
  // γ = 2 intersections at (0,0) and (3,4).
  x[0] = y[0] = 1;
  x[3 * 7 + 4] = y[3 * 7 + 4] = 1;
  const int gamma = IntersectionCount(x, y);
  ASSERT_EQ(gamma, 2);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  const TwoSumGraphLayout layout(ell);
  // Case 1: u, v ∈ A.  Case 2: u ∈ A, v ∈ A'.
  // Case 3: u ∈ A, v ∈ B'. Case 4: u ∈ A, v ∈ B.
  const std::vector<std::pair<VertexId, VertexId>> pairs = {
      {layout.a(1), layout.a(5)},
      {layout.a(1), layout.a_prime(2)},
      {layout.a(1), layout.b_prime(3)},
      {layout.a(1), layout.b(6)},
  };
  for (const auto& [u, v] : pairs) {
    EXPECT_GE(CountEdgeDisjointPaths(g, u, v), 2 * gamma)
        << "pair " << u << "," << v;
  }
}

TEST(TwoSumGraphTest, MinCutScalesWithConcatenatedTwoSumInstance) {
  // End of the Lemma 5.6 pipeline: concatenated 2-SUM strings give
  // MINCUT = 2·r·α where r = #intersecting pairs.
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 64;  // total N = 256, ℓ = 16
  params.alpha = 2;
  params.intersect_fraction = 0.5;
  Rng rng(6);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  const std::vector<uint8_t> x = ConcatenateStrings(instance.x);
  const std::vector<uint8_t> y = ConcatenateStrings(instance.y);
  const int total_int = IntersectionCount(x, y);
  EXPECT_EQ(total_int,
            (params.num_pairs - instance.disjoint_count) * params.alpha);
  // √256 = 16 ≥ 3·INT requires INT ≤ 5: with 2 intersecting pairs × α=2,
  // INT = 4 ✓.
  ASSERT_LE(3 * total_int, 16);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(g).value, 2.0 * total_int);
}

}  // namespace
}  // namespace dcs
