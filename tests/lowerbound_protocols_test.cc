// End-to-end protocol runners: serialized-sketch transcripts for the
// Section 3/4 reductions, and the Lemma 5.6 2-SUM solver.

#include "lowerbound/protocols.h"

#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "graph/generators.h"
#include "localquery/oracle.h"
#include "lowerbound/twosum_graph.h"
#include "lowerbound/twosum_oracle.h"
#include "lowerbound/twosum_solver.h"
#include "sketch/directed_sketches.h"
#include "sketch/sampled_sketches.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(SketchWireFormatTest, ForEachCutSketchRoundTrip) {
  UndirectedGraph sample(4);
  sample.AddEdge(0, 1, 2.5);
  sample.AddEdge(2, 3, 1.0);
  const ForEachCutSketch sketch =
      ForEachCutSketch::FromSample(0.25, std::move(sample));
  BitWriter writer;
  sketch.Serialize(writer);
  EXPECT_EQ(writer.bit_count(), sketch.SizeInBits());
  BitReader reader(writer.bytes());
  const ForEachCutSketch back = ForEachCutSketch::Deserialize(reader).value();
  EXPECT_DOUBLE_EQ(back.epsilon(), 0.25);
  const VertexSet side = MakeVertexSet(4, {0, 2});
  EXPECT_DOUBLE_EQ(back.EstimateCut(side), sketch.EstimateCut(side));
}

TEST(SketchWireFormatTest, BenczurKargerRoundTrip) {
  Rng rng(1);
  const UndirectedGraph g = CompleteGraph(12, 1.0);
  const BenczurKargerSparsifier sketch(g, 0.3, rng);
  BitWriter writer;
  sketch.Serialize(writer);
  EXPECT_EQ(writer.bit_count(), sketch.SizeInBits());
  BitReader reader(writer.bytes());
  const BenczurKargerSparsifier back =
      BenczurKargerSparsifier::Deserialize(reader).value();
  const VertexSet side = MakeVertexSet(12, {0, 1, 5});
  EXPECT_DOUBLE_EQ(back.EstimateCut(side), sketch.EstimateCut(side));
  EXPECT_EQ(back.SizeInBits(), sketch.SizeInBits());
}

TEST(SketchWireFormatTest, DirectedSketchesRoundTrip) {
  Rng gen_rng(2);
  const DirectedGraph g = RandomBalancedDigraph(14, 0.5, 2.0, gen_rng);
  Rng r1(3), r2(4);
  const DirectedForEachSketch fe(g, 0.2, 2.0, r1);
  const DirectedForAllSketch fa(g, 0.2, 2.0, r2);
  const VertexSet side = MakeVertexSet(14, {0, 3, 6, 9});

  BitWriter fe_writer;
  fe.Serialize(fe_writer);
  BitReader fe_reader(fe_writer.bytes());
  const DirectedForEachSketch fe_back =
      DirectedForEachSketch::Deserialize(fe_reader).value();
  EXPECT_DOUBLE_EQ(fe_back.EstimateCut(side), fe.EstimateCut(side));

  BitWriter fa_writer;
  fa.Serialize(fa_writer);
  BitReader fa_reader(fa_writer.bytes());
  const DirectedForAllSketch fa_back =
      DirectedForAllSketch::Deserialize(fa_reader).value();
  EXPECT_DOUBLE_EQ(fa_back.EstimateCut(side), fa.EstimateCut(side));
}

TEST(ForEachProtocolTest, DenseSketchDecodesAndRespectsPigeonhole) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  Rng rng(5);
  // Tiny sketch epsilon → the sampler keeps everything → exact decoding.
  const SketchProtocolResult result =
      RunForEachSketchProtocol(params, 0.01, 50.0, 60, rng);
  EXPECT_GE(result.accuracy(), 0.95);
  // Pigeonhole: a message supporting near-perfect decoding of
  // payload_bits random bits cannot be shorter than the payload.
  EXPECT_GE(result.message_bits, result.payload_bits);
}

TEST(ForEachProtocolTest, CoarseSketchShrinksMessageAndAccuracy) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng1(6);
  const SketchProtocolResult dense =
      RunForEachSketchProtocol(params, 0.02, 20.0, 100, rng1);
  Rng rng2(7);
  const SketchProtocolResult coarse =
      RunForEachSketchProtocol(params, 0.6, 0.05, 100, rng2);
  EXPECT_LT(coarse.message_bits, dense.message_bits);
  EXPECT_LT(coarse.accuracy(), dense.accuracy() + 1e-9);
}

TEST(ForAllProtocolTest, DenseSketchDecides) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  Rng rng(8);
  const SketchProtocolResult result =
      RunForAllSketchProtocol(params, 0.01, 50.0, 20, rng);
  EXPECT_GE(result.accuracy(), 0.75);
  EXPECT_GT(result.message_bits, 0);
}

TEST(TwoSumSolverTest, RecoversDisjointCount) {
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 100;  // N = 400, ℓ = 20
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(9);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  Rng solve_rng(10);
  const TwoSumSolveResult result =
      SolveTwoSumViaMinCut(instance, 0.2, solve_rng);
  EXPECT_NEAR(result.disjoint_estimate, instance.disjoint_count, 1.0);
  EXPECT_GT(result.total_queries, 0);
  EXPECT_EQ(result.communication_bits % 2, 0);
}

TEST(TwoSumSolverTest, WorksWithAlphaGreaterThanOne) {
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 64;  // N = 256, ℓ = 16
  params.alpha = 2;
  params.intersect_fraction = 0.5;
  Rng rng(11);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  Rng solve_rng(12);
  const TwoSumSolveResult result =
      SolveTwoSumViaMinCut(instance, 0.2, solve_rng);
  EXPECT_NEAR(result.disjoint_estimate, instance.disjoint_count, 1.0);
}

TEST(TwoSumSolverTest, BothSearchModesAgree) {
  TwoSumParams params;
  params.num_pairs = 2;
  params.string_length = 128;  // N = 256
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(13);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  Rng r1(14), r2(14);
  const TwoSumSolveResult original = SolveTwoSumViaMinCut(
      instance, 0.25, r1, SearchMode::kOriginalEpsilonSearch);
  const TwoSumSolveResult modified = SolveTwoSumViaMinCut(
      instance, 0.25, r2, SearchMode::kModifiedConstantSearch);
  EXPECT_NEAR(original.disjoint_estimate, modified.disjoint_estimate, 1.0);
}

TEST(TwoSumOracleTest, AnswersMatchMaterializedGraph) {
  Rng rng(60);
  const int ell = 8;
  std::vector<uint8_t> x = rng.RandomBinaryString(ell * ell);
  std::vector<uint8_t> y = rng.RandomBinaryString(ell * ell);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  GraphOracle materialized(g);
  TwoSumGraphOracle two_party(x, y);
  for (int u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(two_party.Degree(u), materialized.Degree(u));
    // Slot orderings differ between the oracles (both are legal fixed
    // orderings); compare neighbor multisets.
    std::multiset<int> a, b;
    for (int64_t slot = 0; slot < ell; ++slot) {
      a.insert(*materialized.Neighbor(u, slot));
      b.insert(*two_party.Neighbor(u, slot));
    }
    ASSERT_EQ(a, b) << "vertex " << u;
  }
  // Adjacency agrees on sampled pairs (including structural non-edges).
  Rng pair_rng(61);
  for (int trial = 0; trial < 300; ++trial) {
    const int u = static_cast<int>(pair_rng.UniformInt(4 * ell));
    const int v = static_cast<int>(pair_rng.UniformInt(4 * ell));
    if (u == v) continue;
    ASSERT_EQ(two_party.Adjacent(u, v), materialized.Adjacent(u, v))
        << u << "," << v;
  }
}

TEST(TwoSumOracleTest, DegreeQueriesCostNoBits) {
  Rng rng(62);
  std::vector<uint8_t> x = rng.RandomBinaryString(36);
  std::vector<uint8_t> y = rng.RandomBinaryString(36);
  TwoSumGraphOracle oracle(x, y);
  for (int u = 0; u < oracle.num_vertices(); ++u) oracle.Degree(u);
  EXPECT_EQ(oracle.bits_exchanged(), 0);
  oracle.Neighbor(0, 3);
  EXPECT_EQ(oracle.bits_exchanged(), 2);
  oracle.Adjacent(0, oracle.side_length());  // a_0 vs a'_0: one exchange
  EXPECT_EQ(oracle.bits_exchanged(), 4);
}

TEST(TwoSumOracleTest, StructuralNonEdgesAreFree) {
  Rng rng(63);
  std::vector<uint8_t> x = rng.RandomBinaryString(25);
  std::vector<uint8_t> y = rng.RandomBinaryString(25);
  TwoSumGraphOracle oracle(x, y);
  // Two A-side vertices can never be adjacent: no bits needed.
  EXPECT_FALSE(oracle.Adjacent(0, 1));
  EXPECT_EQ(oracle.bits_exchanged(), 0);
}

TEST(TwoSumOracleTest, SolverBitsEqualOracleExchanges) {
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 64;  // N = 256
  params.alpha = 1;
  params.intersect_fraction = 0.5;
  Rng rng(64);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  Rng solve_rng(65);
  const TwoSumSolveResult result =
      SolveTwoSumViaMinCut(instance, 0.25, solve_rng);
  EXPECT_NEAR(result.disjoint_estimate, instance.disjoint_count, 1.0);
  EXPECT_GT(result.communication_bits, 0);
}

// --- failure injection: corrupted transcripts ---

TEST(WireCorruptionTest, TruncatedSketchStreamReturnsStatus) {
  Rng gen_rng(40);
  const DirectedGraph g = RandomBalancedDigraph(10, 0.5, 2.0, gen_rng);
  Rng rng(41);
  const DirectedForEachSketch sketch(g, 0.3, 2.0, rng);
  BitWriter writer;
  sketch.Serialize(writer);
  // Drop the last quarter of the stream: deserialization must report the
  // truncation rather than fabricate a sketch (or abort).
  std::vector<uint8_t> truncated(
      writer.bytes().begin(),
      writer.bytes().begin() +
          static_cast<int64_t>(writer.bytes().size() * 3 / 4));
  BitReader reader(truncated);
  const auto corrupted = DirectedForEachSketch::Deserialize(reader);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kDataLoss);
}

TEST(WireCorruptionTest, BitFlipTripsChecksum) {
  // The envelope checksum covers the whole payload, so even a single
  // flipped mantissa bit deep inside a weight field is detected instead of
  // silently perturbing estimates.
  Rng gen_rng(42);
  const DirectedGraph g = RandomBalancedDigraph(8, 0.6, 2.0, gen_rng);
  Rng rng(43);
  const DirectedForEachSketch sketch(g, 0.3, 2.0, rng);
  BitWriter writer;
  sketch.Serialize(writer);
  std::vector<uint8_t> bytes = writer.bytes();
  bytes[12] ^= 0x10;  // well inside the payload
  BitReader reader(bytes);
  const auto corrupted = DirectedForEachSketch::Deserialize(reader);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace dcs
