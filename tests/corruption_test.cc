// Corruption-robustness harness for every wire format in the library.
//
// For each serializable object (graphs and all four sketch kinds) this test
// flips every single bit of the serialized stream and truncates the stream
// at every byte length, and asserts that every mutation comes back as a
// clean non-OK Status — never a crash, a hang, or an attempt to allocate
// from a corrupted length field. The envelope checksum (serialization.cc)
// is what makes the exhaustive claim hold: any payload mutation changes the
// FNV-1a digest, and header mutations are each individually validated.
//
// The mutations are deterministic (every position, no sampled randomness),
// so a regression here is reproducible from the failure message alone.

#include <sys/socket.h>

#include <cerrno>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/channel.h"
#include "comm/message.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "sketch/cut_balance_sparsifier.h"
#include "sketch/directed_sketches.h"
#include "sketch/sampled_sketches.h"
#include "sketch/serialization.h"
#include "store/segment.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {
namespace {

// A serialized stream plus a parser that must reject every mutation of it.
struct WireCase {
  std::string name;
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
  std::function<Status(BitReader&)> parse;
};

template <typename DeserializeFn>
std::function<Status(BitReader&)> AsParser(DeserializeFn deserialize) {
  return [deserialize](BitReader& reader) {
    return deserialize(reader).status();
  };
}

// Adapts a Message-taking RPC decoder (serve/wire.h) to the BitReader
// harness. The decoder validates the declared payload length against the
// Message's *exact* bit count — not the padded byte buffer — so the adapter
// reads back at most the original bit count: a full-length mutation
// reconstructs the stream bit-for-bit, while a truncation yields a shorter
// Message the decoder must reject.
template <typename DecodeFn>
std::function<Status(BitReader&)> AsRpcParser(int64_t bit_count,
                                              DecodeFn decode) {
  return [bit_count, decode](BitReader& reader) -> Status {
    BitWriter writer;
    for (int64_t b = 0; b < bit_count && !reader.AtEnd(); ++b) {
      const auto bit = reader.TryReadBit();
      if (!bit.ok()) return bit.status();
      writer.WriteBit(*bit);
    }
    return decode(SealMessage(writer));
  };
}

std::vector<WireCase> BuildWireCases() {
  std::vector<WireCase> cases;
  Rng rng(2024);

  {
    WireCase c;
    c.name = "directed_graph";
    const DirectedGraph g = RandomBalancedDigraph(10, 0.5, 2.0, rng);
    BitWriter writer;
    SerializeDirectedGraph(g, writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DeserializeDirectedGraph(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "undirected_graph";
    const UndirectedGraph g =
        RandomUndirectedGraph(10, 0.5, 0.25, 2.0, true, rng);
    BitWriter writer;
    SerializeUndirectedGraph(g, writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DeserializeUndirectedGraph(r); });
    cases.push_back(std::move(c));
  }

  const UndirectedGraph base =
      RandomUndirectedGraph(8, 0.6, 0.5, 1.5, true, rng);
  {
    WireCase c;
    c.name = "foreach_sketch";
    const ForEachCutSketch sketch(base, 0.4, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return ForEachCutSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "forall_sparsifier";
    const BenczurKargerSparsifier sketch(base, 0.4, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return BenczurKargerSparsifier::Deserialize(r); });
    cases.push_back(std::move(c));
  }

  const DirectedGraph digraph = RandomBalancedDigraph(8, 0.6, 2.0, rng);
  {
    WireCase c;
    c.name = "directed_foreach_sketch";
    const DirectedForEachSketch sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DirectedForEachSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "directed_forall_sketch";
    const DirectedForAllSketch sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DirectedForAllSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    // The cut-balance sparsifier wire format (StreamKind 8): parameter
    // header, Elias-gamma quantized-imbalance vector, then a nested
    // directed-graph envelope for the importance sample. Both layers of
    // checksum plus the parameter validation must reject every mutation.
    WireCase c;
    c.name = "cut_balance_sparsifier";
    const CutBalanceSparsifier sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return CutBalanceSparsifier::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    // A lossy-channel frame (comm/channel.h) as its receiver sees it: the
    // parser's own checks plus the transfer-geometry validation ReliableLink
    // applies (expected seq/total/message/payload sizes) — a header that
    // disagrees is NACKed exactly like a parse failure, so the combination
    // must reject every mutation.
    WireCase c;
    c.name = "channel_frame";
    BitWriter payload;
    for (int b = 0; b < 300; ++b) {
      payload.WriteBit(static_cast<int>(rng.Next() & 1));
    }
    BitWriter framed;
    WriteChannelFrame(/*seq=*/3, /*total_chunks=*/7, /*message_bits=*/2048,
                      payload.bytes(), payload.bit_count(), framed);
    c.bytes = framed.bytes();
    c.bit_count = framed.bit_count();
    c.parse = [](BitReader& r) -> Status {
      const auto frame = TryParseChannelFrame(r);
      if (!frame.ok()) return frame.status();
      if (frame->seq != 3 || frame->total_chunks != 7 ||
          frame->message_bits != 2048 || frame->payload_bits != 300) {
        return DataLossError("channel frame header mismatch");
      }
      return OkStatus();
    };
    cases.push_back(std::move(c));
  }
  {
    // RPC envelopes (serve/wire.h): what a serving-tier worker or client
    // decodes after the transport's per-frame checks pass. The body carries
    // its own magic/version/kind/length/FNV-1a envelope, so every mutation
    // must still be rejected at this layer.
    WireCase c;
    c.name = "rpc_register_graph_request";
    RpcRequest request;
    request.kind = RpcKind::kRegisterGraph;
    request.graph = digraph;
    const Message message = EncodeRpcRequest(request);
    c.bytes = message.bytes;
    c.bit_count = message.bit_count;
    c.parse = AsRpcParser(message.bit_count, [](const Message& m) {
      return DecodeRpcRequest(m).status();
    });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "rpc_query_batch_request";
    RpcRequest request;
    request.kind = RpcKind::kQueryBatch;
    request.object_id = 7;
    request.num_vertices = 12;
    for (int q = 0; q < 6; ++q) {
      VertexSet side(12, 0);
      for (auto& bit : side) bit = rng.Bernoulli(0.5) ? 1 : 0;
      request.sides.push_back(std::move(side));
    }
    const Message message = EncodeRpcRequest(request);
    c.bytes = message.bytes;
    c.bit_count = message.bit_count;
    c.parse = AsRpcParser(message.bit_count, [](const Message& m) {
      return DecodeRpcRequest(m).status();
    });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "rpc_ok_response";
    RpcResponse response;
    response.status = OkStatus();
    response.server_token = 0xDEADBEEFCAFEF00DULL;
    response.object_id = 3;
    for (int i = 0; i < 9; ++i) {
      response.values.push_back(rng.UniformDouble() * 100.0);
    }
    const Message message = EncodeRpcResponse(response);
    c.bytes = message.bytes;
    c.bit_count = message.bit_count;
    c.parse = AsRpcParser(message.bit_count, [](const Message& m) {
      return DecodeRpcResponse(m).status();
    });
    cases.push_back(std::move(c));
  }
  {
    // An error response carries a status-message string; its length field
    // and every text byte ride inside the checksummed payload.
    WireCase c;
    c.name = "rpc_error_response";
    RpcResponse response;
    response.status =
        ResourceExhaustedError("shard queue full; back off and retry");
    response.server_token = 0x0123456789ABCDEFULL;
    const Message message = EncodeRpcResponse(response);
    c.bytes = message.bytes;
    c.bit_count = message.bit_count;
    c.parse = AsRpcParser(message.bit_count, [](const Message& m) {
      return DecodeRpcResponse(m).status();
    });
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(CorruptionTest, StreamsAreNonTrivial) {
  // Guards the harness itself: every case must parse cleanly uncorrupted
  // and be long enough that the flip sweep exercises header and payload.
  for (const WireCase& c : BuildWireCases()) {
    EXPECT_GT(c.bit_count, 100) << c.name;
    EXPECT_EQ(static_cast<int64_t>(c.bytes.size()), (c.bit_count + 7) / 8)
        << c.name;
    BitReader reader(c.bytes);
    EXPECT_TRUE(c.parse(reader).ok()) << c.name;
  }
}

TEST(CorruptionTest, EverySingleBitFlipIsRejected) {
  for (const WireCase& c : BuildWireCases()) {
    for (int64_t bit = 0; bit < c.bit_count; ++bit) {
      std::vector<uint8_t> mutated = c.bytes;
      mutated[static_cast<size_t>(bit / 8)] ^=
          static_cast<uint8_t>(1u << (bit % 8));
      BitReader reader(mutated);
      const Status status = c.parse(reader);
      ASSERT_FALSE(status.ok())
          << c.name << ": flipping bit " << bit << " of " << c.bit_count
          << " was not detected";
    }
  }
}

TEST(CorruptionTest, EveryByteTruncationIsRejected) {
  // bytes.size() == ceil(bit_count / 8), so dropping any trailing byte
  // removes at least one meaningful bit and must be detected.
  for (const WireCase& c : BuildWireCases()) {
    for (size_t len = 0; len < c.bytes.size(); ++len) {
      const std::vector<uint8_t> truncated(c.bytes.begin(),
                                           c.bytes.begin() + len);
      BitReader reader(truncated);
      const Status status = c.parse(reader);
      ASSERT_FALSE(status.ok())
          << c.name << ": truncation to " << len << " of " << c.bytes.size()
          << " bytes was not detected";
    }
  }
}

TEST(CorruptionTest, TruncationReportsDataLoss) {
  // Spot-check the code (not just non-OK) on a clean truncation: half the
  // stream can only be missing data.
  for (const WireCase& c : BuildWireCases()) {
    const std::vector<uint8_t> truncated(
        c.bytes.begin(), c.bytes.begin() + c.bytes.size() / 2);
    BitReader reader(truncated);
    const Status status = c.parse(reader);
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << c.name << ": " << status.ToString();
  }
}

// ---------------------------------------------------------------------------
// Socket transport framing (serve/transport.h): the length-prefixed channel
// frames a Connection::Receive parses off a real stream socket. Each
// mutation is delivered over an actual loopback connection whose write end
// closes after the bytes, so a mutation that implies "more data coming"
// (e.g. an inflated length prefix) surfaces as kUnavailable at EOF instead
// of hanging — the test asserts non-OK, never a crash or a stall.

// The exact bytes Connection::Send emits for a single-chunk message: a
// 32-bit little-endian frame length, then the 0xFA5C channel frame
// (seq 0, total 1, message bits, payload, FNV-1a). The clean round-trip
// test below proves this stays in sync with the real sender.
std::vector<uint8_t> SingleChunkWire(const Message& message) {
  BitWriter framed;
  WriteChannelFrame(/*seq=*/0, /*total_chunks=*/1,
                    /*message_bits=*/message.bit_count, message.bytes,
                    message.bit_count, framed);
  const std::vector<uint8_t>& frame_bytes = framed.bytes();
  const uint32_t frame_len = static_cast<uint32_t>(frame_bytes.size());
  std::vector<uint8_t> wire;
  wire.reserve(4 + frame_bytes.size());
  wire.push_back(static_cast<uint8_t>(frame_len & 0xFF));
  wire.push_back(static_cast<uint8_t>((frame_len >> 8) & 0xFF));
  wire.push_back(static_cast<uint8_t>((frame_len >> 16) & 0xFF));
  wire.push_back(static_cast<uint8_t>((frame_len >> 24) & 0xFF));
  wire.insert(wire.end(), frame_bytes.begin(), frame_bytes.end());
  return wire;
}

Status SendRaw(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return UnavailableError("raw send failed");
  }
  return OkStatus();
}

// Writes `wire` to a fresh loopback connection, closes the write end, and
// returns what Receive makes of it.
StatusOr<Message> DeliverRawWire(Listener& listener,
                                 const std::vector<uint8_t>& wire) {
  DCS_ASSIGN_OR_RETURN(Connection client,
                       Connect(listener.local_endpoint(), 1000));
  DCS_ASSIGN_OR_RETURN(Connection server, listener.Accept(1000));
  DCS_RETURN_IF_ERROR(SendRaw(client.fd(), wire));
  client.Close();
  return server.Receive(2000);
}

Message TransportTestMessage() {
  Rng rng(99);
  BitWriter writer;
  for (int b = 0; b < 600; ++b) {
    writer.WriteBit(static_cast<int>(rng.Next() & 1));
  }
  return SealMessage(writer);
}

TEST(CorruptionTest, SocketFrameRoundTripsClean) {
  // Harness guard: the hand-built wire must be exactly what a real Receive
  // accepts, and the decoded message must be bit-identical.
  auto listener = Listener::Listen(*ParseEndpoint("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const Message message = TransportTestMessage();
  const auto received = DeliverRawWire(*listener, SingleChunkWire(message));
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->bit_count, message.bit_count);
  EXPECT_EQ(received->bytes, message.bytes);
}

TEST(CorruptionTest, EverySocketFrameBitFlipIsRejected) {
  auto listener = Listener::Listen(*ParseEndpoint("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::vector<uint8_t> wire = SingleChunkWire(TransportTestMessage());
  // Every bit of every byte, including the unchecksummed length prefix and
  // the trailing pad bits of the frame's final partial byte.
  for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<uint8_t> mutated = wire;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const auto received = DeliverRawWire(*listener, mutated);
    ASSERT_FALSE(received.ok())
        << "flipping wire bit " << bit << " of " << wire.size() * 8
        << " was not detected";
  }
}

TEST(CorruptionTest, EverySocketFrameTruncationIsRejected) {
  auto listener = Listener::Listen(*ParseEndpoint("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::vector<uint8_t> wire = SingleChunkWire(TransportTestMessage());
  for (size_t len = 0; len < wire.size(); ++len) {
    const std::vector<uint8_t> truncated(wire.begin(),
                                         wire.begin() + len);
    const auto received = DeliverRawWire(*listener, truncated);
    ASSERT_FALSE(received.ok())
        << "truncation to " << len << " of " << wire.size()
        << " wire bytes was not detected";
  }
}

// ---------------------------------------------------------------------------
// Sketch-store segment files (store/segment.h). The contract is stricter
// than reject-everything: a mutation must come back either as a clean
// kDataLoss or as an OK scan whose surviving records are a *bit-exact
// prefix* of what was written (torn-tail recovery) — never a crash, a
// hang, or a single wrong byte served back.

struct SegmentImage {
  std::vector<uint8_t> bytes;
  std::vector<SegmentRecord> records;
};

SegmentRecord EnvelopedRecord(int64_t object_id, StreamKind kind,
                              const BitWriter& envelope) {
  SegmentRecord record;
  record.object_id = object_id;
  record.kind = kind;
  record.payload = envelope.bytes();
  record.payload_bits = envelope.bit_count();
  return record;
}

// Two records of different kinds, then the index footer + seal trailer.
// Pass sealed=false for the crash-exposed variant (records only).
SegmentImage BuildSegmentImage(bool sealed) {
  Rng rng(512);
  SegmentImage image;
  {
    BitWriter writer;
    SerializeDirectedGraph(RandomBalancedDigraph(9, 0.5, 2.0, rng), writer);
    image.records.push_back(
        EnvelopedRecord(3, StreamKind::kDirectedGraph, writer));
  }
  {
    BitWriter writer;
    SerializeUndirectedGraph(
        RandomUndirectedGraph(7, 0.5, 0.25, 1.5, true, rng), writer);
    image.records.push_back(
        EnvelopedRecord(8, StreamKind::kUndirectedGraph, writer));
  }
  std::vector<SegmentIndexEntry> entries;
  int64_t offset = 0;
  for (const SegmentRecord& record : image.records) {
    SegmentIndexEntry entry;
    entry.object_id = record.object_id;
    entry.kind = record.kind;
    entry.byte_offset = offset;
    entry.byte_length = SegmentRecordByteLength(record.payload_bits);
    entries.push_back(entry);
    AppendSegmentRecord(record, image.bytes);
    offset += entry.byte_length;
  }
  if (sealed) AppendSegmentSeal(entries, image.bytes);
  return image;
}

// True iff `got` is a bit-exact prefix of `want` (payload bytes included).
bool RecordsArePrefix(const std::vector<SegmentRecord>& got,
                      const std::vector<SegmentRecord>& want) {
  if (got.size() > want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].object_id != want[i].object_id ||
        got[i].kind != want[i].kind ||
        got[i].payload_bits != want[i].payload_bits ||
        got[i].payload != want[i].payload) {
      return false;
    }
  }
  return true;
}

TEST(CorruptionTest, SegmentScanRoundTripsClean) {
  for (const bool sealed : {true, false}) {
    const SegmentImage image = BuildSegmentImage(sealed);
    const auto scan = ScanSegment(image.bytes);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_EQ(scan->sealed, sealed);
    EXPECT_FALSE(scan->recovered_torn_tail);
    ASSERT_EQ(scan->records.size(), image.records.size());
    EXPECT_TRUE(RecordsArePrefix(scan->records, image.records));
  }
}

TEST(CorruptionTest, EverySegmentBitFlipIsRejectedOrAnExactPrefix) {
  for (const bool sealed : {true, false}) {
    const SegmentImage image = BuildSegmentImage(sealed);
    for (size_t bit = 0; bit < image.bytes.size() * 8; ++bit) {
      std::vector<uint8_t> mutated = image.bytes;
      mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      const auto scan = ScanSegment(mutated);
      if (!scan.ok()) {
        ASSERT_EQ(scan.status().code(), StatusCode::kDataLoss)
            << "sealed=" << sealed << " bit " << bit << ": "
            << scan.status().ToString();
        continue;
      }
      // A flip the scan tolerates (e.g. in the seal trailer, demoting the
      // segment to unsealed-with-torn-tail) must never alter served bytes.
      ASSERT_TRUE(RecordsArePrefix(scan->records, image.records))
          << "sealed=" << sealed << " bit " << bit
          << " survived the scan with wrong record bytes";
    }
  }
}

TEST(CorruptionTest, EverySegmentTruncationIsRejectedOrAnExactPrefix) {
  for (const bool sealed : {true, false}) {
    const SegmentImage image = BuildSegmentImage(sealed);
    for (size_t len = 0; len < image.bytes.size(); ++len) {
      const std::vector<uint8_t> truncated(image.bytes.begin(),
                                           image.bytes.begin() + len);
      const auto scan = ScanSegment(truncated);
      if (!scan.ok()) {
        ASSERT_EQ(scan.status().code(), StatusCode::kDataLoss)
            << "sealed=" << sealed << " len " << len << ": "
            << scan.status().ToString();
        continue;
      }
      EXPECT_FALSE(scan->sealed) << "sealed=" << sealed << " len " << len;
      ASSERT_TRUE(RecordsArePrefix(scan->records, image.records))
          << "sealed=" << sealed << " truncation to " << len
          << " bytes yielded wrong record bytes";
    }
  }
}

TEST(CorruptionTest, UnsealedTruncationRecoversWholeRecordPrefix) {
  // The recovery guarantee, positively: chopping an unsealed segment
  // mid-record keeps exactly the records that fit whole — a kill between
  // Put and Seal costs the torn tail, nothing more.
  const SegmentImage image = BuildSegmentImage(/*sealed=*/false);
  const int64_t first_record_bytes =
      SegmentRecordByteLength(image.records[0].payload_bits);
  const std::vector<uint8_t> torn(
      image.bytes.begin(),
      image.bytes.begin() + first_record_bytes +
          SegmentRecordByteLength(image.records[1].payload_bits) / 2);
  const auto scan = ScanSegment(torn);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->recovered_torn_tail);
  EXPECT_EQ(scan->valid_prefix_bytes, first_record_bytes);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(RecordsArePrefix(scan->records, image.records));
}

TEST(CorruptionTest, SegmentIndexHugeCountIsRejectedWithoutAllocation) {
  // A hostile index footer declaring 2^40 entries over a handful of bytes
  // must be rejected by the count cap, not attempted as an allocation.
  BitWriter payload;
  payload.WriteEliasGamma(uint64_t{1} << 40);
  payload.WriteEliasGamma(1);
  const std::vector<uint8_t> bytes = payload.bytes();
  BitReader reader(bytes);
  const auto entries = ParseSegmentIndexPayload(reader);
  ASSERT_FALSE(entries.ok());
  EXPECT_EQ(entries.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptionTest, GarbageBytesAreRejected) {
  // Deterministic pseudo-random garbage at several lengths: none of it can
  // carry a valid envelope (magic + checksum).
  Rng rng(7);
  for (const int64_t len : {1, 2, 3, 8, 64, 4096}) {
    std::vector<uint8_t> garbage(static_cast<size_t>(len));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    for (const WireCase& c : BuildWireCases()) {
      BitReader reader(garbage);
      EXPECT_FALSE(c.parse(reader).ok()) << c.name << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace dcs
