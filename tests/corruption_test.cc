// Corruption-robustness harness for every wire format in the library.
//
// For each serializable object (graphs and all four sketch kinds) this test
// flips every single bit of the serialized stream and truncates the stream
// at every byte length, and asserts that every mutation comes back as a
// clean non-OK Status — never a crash, a hang, or an attempt to allocate
// from a corrupted length field. The envelope checksum (serialization.cc)
// is what makes the exhaustive claim hold: any payload mutation changes the
// FNV-1a digest, and header mutations are each individually validated.
//
// The mutations are deterministic (every position, no sampled randomness),
// so a regression here is reproducible from the failure message alone.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/channel.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "sketch/cut_balance_sparsifier.h"
#include "sketch/directed_sketches.h"
#include "sketch/sampled_sketches.h"
#include "sketch/serialization.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {
namespace {

// A serialized stream plus a parser that must reject every mutation of it.
struct WireCase {
  std::string name;
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
  std::function<Status(BitReader&)> parse;
};

template <typename DeserializeFn>
std::function<Status(BitReader&)> AsParser(DeserializeFn deserialize) {
  return [deserialize](BitReader& reader) {
    return deserialize(reader).status();
  };
}

std::vector<WireCase> BuildWireCases() {
  std::vector<WireCase> cases;
  Rng rng(2024);

  {
    WireCase c;
    c.name = "directed_graph";
    const DirectedGraph g = RandomBalancedDigraph(10, 0.5, 2.0, rng);
    BitWriter writer;
    SerializeDirectedGraph(g, writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DeserializeDirectedGraph(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "undirected_graph";
    const UndirectedGraph g =
        RandomUndirectedGraph(10, 0.5, 0.25, 2.0, true, rng);
    BitWriter writer;
    SerializeUndirectedGraph(g, writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DeserializeUndirectedGraph(r); });
    cases.push_back(std::move(c));
  }

  const UndirectedGraph base =
      RandomUndirectedGraph(8, 0.6, 0.5, 1.5, true, rng);
  {
    WireCase c;
    c.name = "foreach_sketch";
    const ForEachCutSketch sketch(base, 0.4, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return ForEachCutSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "forall_sparsifier";
    const BenczurKargerSparsifier sketch(base, 0.4, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return BenczurKargerSparsifier::Deserialize(r); });
    cases.push_back(std::move(c));
  }

  const DirectedGraph digraph = RandomBalancedDigraph(8, 0.6, 2.0, rng);
  {
    WireCase c;
    c.name = "directed_foreach_sketch";
    const DirectedForEachSketch sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DirectedForEachSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    WireCase c;
    c.name = "directed_forall_sketch";
    const DirectedForAllSketch sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return DirectedForAllSketch::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    // The cut-balance sparsifier wire format (StreamKind 8): parameter
    // header, Elias-gamma quantized-imbalance vector, then a nested
    // directed-graph envelope for the importance sample. Both layers of
    // checksum plus the parameter validation must reject every mutation.
    WireCase c;
    c.name = "cut_balance_sparsifier";
    const CutBalanceSparsifier sketch(digraph, 0.4, 2.0, rng);
    BitWriter writer;
    sketch.Serialize(writer);
    c.bytes = writer.bytes();
    c.bit_count = writer.bit_count();
    c.parse = AsParser(
        [](BitReader& r) { return CutBalanceSparsifier::Deserialize(r); });
    cases.push_back(std::move(c));
  }
  {
    // A lossy-channel frame (comm/channel.h) as its receiver sees it: the
    // parser's own checks plus the transfer-geometry validation ReliableLink
    // applies (expected seq/total/message/payload sizes) — a header that
    // disagrees is NACKed exactly like a parse failure, so the combination
    // must reject every mutation.
    WireCase c;
    c.name = "channel_frame";
    BitWriter payload;
    for (int b = 0; b < 300; ++b) {
      payload.WriteBit(static_cast<int>(rng.Next() & 1));
    }
    BitWriter framed;
    WriteChannelFrame(/*seq=*/3, /*total_chunks=*/7, /*message_bits=*/2048,
                      payload.bytes(), payload.bit_count(), framed);
    c.bytes = framed.bytes();
    c.bit_count = framed.bit_count();
    c.parse = [](BitReader& r) -> Status {
      const auto frame = TryParseChannelFrame(r);
      if (!frame.ok()) return frame.status();
      if (frame->seq != 3 || frame->total_chunks != 7 ||
          frame->message_bits != 2048 || frame->payload_bits != 300) {
        return DataLossError("channel frame header mismatch");
      }
      return OkStatus();
    };
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(CorruptionTest, StreamsAreNonTrivial) {
  // Guards the harness itself: every case must parse cleanly uncorrupted
  // and be long enough that the flip sweep exercises header and payload.
  for (const WireCase& c : BuildWireCases()) {
    EXPECT_GT(c.bit_count, 100) << c.name;
    EXPECT_EQ(static_cast<int64_t>(c.bytes.size()), (c.bit_count + 7) / 8)
        << c.name;
    BitReader reader(c.bytes);
    EXPECT_TRUE(c.parse(reader).ok()) << c.name;
  }
}

TEST(CorruptionTest, EverySingleBitFlipIsRejected) {
  for (const WireCase& c : BuildWireCases()) {
    for (int64_t bit = 0; bit < c.bit_count; ++bit) {
      std::vector<uint8_t> mutated = c.bytes;
      mutated[static_cast<size_t>(bit / 8)] ^=
          static_cast<uint8_t>(1u << (bit % 8));
      BitReader reader(mutated);
      const Status status = c.parse(reader);
      ASSERT_FALSE(status.ok())
          << c.name << ": flipping bit " << bit << " of " << c.bit_count
          << " was not detected";
    }
  }
}

TEST(CorruptionTest, EveryByteTruncationIsRejected) {
  // bytes.size() == ceil(bit_count / 8), so dropping any trailing byte
  // removes at least one meaningful bit and must be detected.
  for (const WireCase& c : BuildWireCases()) {
    for (size_t len = 0; len < c.bytes.size(); ++len) {
      const std::vector<uint8_t> truncated(c.bytes.begin(),
                                           c.bytes.begin() + len);
      BitReader reader(truncated);
      const Status status = c.parse(reader);
      ASSERT_FALSE(status.ok())
          << c.name << ": truncation to " << len << " of " << c.bytes.size()
          << " bytes was not detected";
    }
  }
}

TEST(CorruptionTest, TruncationReportsDataLoss) {
  // Spot-check the code (not just non-OK) on a clean truncation: half the
  // stream can only be missing data.
  for (const WireCase& c : BuildWireCases()) {
    const std::vector<uint8_t> truncated(
        c.bytes.begin(), c.bytes.begin() + c.bytes.size() / 2);
    BitReader reader(truncated);
    const Status status = c.parse(reader);
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << c.name << ": " << status.ToString();
  }
}

TEST(CorruptionTest, GarbageBytesAreRejected) {
  // Deterministic pseudo-random garbage at several lengths: none of it can
  // carry a valid envelope (magic + checksum).
  Rng rng(7);
  for (const int64_t len : {1, 2, 3, 8, 64, 4096}) {
    std::vector<uint8_t> garbage(static_cast<size_t>(len));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    for (const WireCase& c : BuildWireCases()) {
      BitReader reader(garbage);
      EXPECT_FALSE(c.parse(reader).ok()) << c.name << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace dcs
