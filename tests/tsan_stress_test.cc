// Thread-sanitizer stress driver for the trial-parallelism layer (no
// gtest: TSan findings are the assertions). Registered with ctest only
// when configured with -DDCS_ENABLE_SANITIZERS=thread; see the root
// CMakeLists.txt.
//
// Hammers the constructs the parallel runners rely on: ThreadPool reuse
// across many loops, ParallelFor over shared read-only graphs with
// pre-built adjacency, and the seed-deterministic trial runners
// themselves at several thread counts.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "graph/incremental_cut_oracle.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/foreach_encoding.h"
#include "serve/cut_query_service.h"
#include "stream/ingest.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

void StressThreadPoolReuse() {
  ThreadPool pool(4);
  std::vector<int64_t> slots(512);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(static_cast<int64_t>(slots.size()),
                     [&slots, round](int64_t i) {
                       slots[static_cast<size_t>(i)] = round + i;
                     });
  }
  Require(slots[511] == 199 + 511, "thread pool reuse");
}

void StressBackToBackGrowingLoops() {
  // The straggler window: a worker that claimed the last index of a short
  // loop but has not finished draining while the caller installs the next
  // (larger) loop. Tiny and growing counts alternate with no pause so TSan
  // sees the worker/caller hand-off under maximal pressure.
  ThreadPool pool(8);
  constexpr int64_t kMaxCount = 2048;
  std::vector<std::atomic<int>> hits(kMaxCount);
  int64_t grown = 1;
  for (int round = 0; round < 2000; ++round) {
    const int64_t count = (round % 2 == 0) ? grown : 1;
    for (int64_t i = 0; i < count; ++i) {
      hits[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    }
    pool.ParallelFor(count, [&hits](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < count; ++i) {
      Require(hits[static_cast<size_t>(i)].load() == 1,
              "straggler stress: index ran exactly once");
    }
    if (round % 2 == 0) grown = grown >= kMaxCount / 2 ? 1 : grown * 2 + 1;
  }
}

void StressSharedGraphReads() {
  // Many threads query cuts on one shared graph whose lazy adjacency was
  // built up front — the access pattern of the decoders' skeleton graphs.
  Rng rng(5);
  DirectedGraph graph(64);
  for (int e = 0; e < 1000; ++e) {
    const int src = static_cast<int>(rng.UniformInt(64));
    int dst = static_cast<int>(rng.UniformInt(63));
    if (dst >= src) ++dst;
    graph.AddEdge(src, dst, 1.0);
  }
  graph.BuildAdjacency();
  const DegreeIndex index = graph.BuildDegreeIndex();
  std::vector<double> values(64);
  ParallelFor(8, 64, [&](int64_t i) {
    Rng local(SubtaskSeed(77, i));
    VertexSet side = local.RandomBinaryString(64);
    IncrementalCutOracle oracle(graph, side);
    for (int step = 0; step < 50; ++step) {
      oracle.Flip(static_cast<VertexId>(local.UniformInt(64)));
    }
    values[static_cast<size_t>(i)] =
        oracle.value() + graph.CutWeight(oracle.side(), index);
  });
  Require(values.size() == 64, "shared graph reads");
}

void StressTrialRunners() {
  ForAllLowerBoundParams forall;
  forall.inv_epsilon_sq = 8;
  forall.beta = 1;
  forall.num_layers = 2;
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& rng) -> CutOracle {
    return NoisyCutOracle(g, 0.05, rng);
  };
  const ForAllTrialResult serial = RunForAllTrials(
      forall, 16, 123, factory, ForAllDecoder::SubsetSelection::kGreedy, 1);
  for (const int threads : {2, 4, 8}) {
    const ForAllTrialResult parallel =
        RunForAllTrials(forall, 16, 123, factory,
                        ForAllDecoder::SubsetSelection::kGreedy, threads);
    Require(parallel.correct == serial.correct, "forall determinism");
  }
  ForEachLowerBoundParams foreach_params;
  foreach_params.inv_epsilon = 8;
  foreach_params.sqrt_beta = 1;
  foreach_params.num_layers = 2;
  const ForEachTrialResult foreach_serial =
      RunForEachTrials(foreach_params, 4, 8, 321, factory, 1);
  for (const int threads : {2, 8}) {
    const ForEachTrialResult parallel =
        RunForEachTrials(foreach_params, 4, 8, 321, factory, threads);
    Require(parallel.correct == foreach_serial.correct,
            "foreach determinism");
  }
}

void StressChannelParallelTransfers() {
  // Concurrent ReliableLink transfers, one link per task with a derived
  // seed, all over one shared message and the shared metrics registry.
  // Per-link state plus per-task seeding means every task's transcript must
  // be bit-identical to a serial replay at every thread count.
  Rng rng(9);
  BitWriter writer;
  for (int b = 0; b < 20000; ++b) {
    writer.WriteBit(static_cast<int>(rng.Next() & 1));
  }
  const Message message = SealMessage(writer);
  constexpr int64_t kTasks = 32;
  auto run_one = [&message](int64_t task) -> int64_t {
    ChannelOptions options;
    options.seed = SubtaskSeed(555, task);
    options.drop_rate = 0.3;
    options.flip_rate = 0.1;
    options.max_rounds = 64;
    ReliableLink link(options);
    const auto delivered = link.Transfer(message);
    Require(delivered.ok(), "channel stress: transfer recovered");
    Require(delivered->bytes == message.bytes,
            "channel stress: recovered bytes are the sender's");
    return link.stats().wire_bits;
  };
  std::vector<int64_t> serial(static_cast<size_t>(kTasks));
  for (int64_t t = 0; t < kTasks; ++t) {
    serial[static_cast<size_t>(t)] = run_one(t);
  }
  for (const int threads : {2, 4, 8}) {
    std::vector<int64_t> parallel(static_cast<size_t>(kTasks));
    ParallelFor(threads, kTasks, [&](int64_t t) {
      parallel[static_cast<size_t>(t)] = run_one(t);
    });
    Require(parallel == serial,
            "channel stress: transcripts identical across thread counts");
  }
}

void StressServeCacheConcurrency() {
  // The serving layer's striped cache under contention and eviction
  // pressure: many threads fire AnswerBatch on one service (num_threads=1,
  // so batches run fully concurrently on the callers), all over a
  // deliberately tiny cache that evicts constantly. Warm answers must stay
  // bit-identical to the cold path no matter how lookups, inserts, and
  // evictions interleave.
  Rng rng(13);
  DirectedGraph graph(48);
  for (int e = 0; e < 600; ++e) {
    const int src = static_cast<int>(rng.UniformInt(48));
    int dst = static_cast<int>(rng.UniformInt(47));
    if (dst >= src) ++dst;
    graph.AddEdge(src, dst, 1.0 + static_cast<double>(rng.Next() % 4));
  }

  CutQueryServiceOptions options;
  options.num_threads = 1;   // callers are the concurrency
  options.cache_capacity = 16;  // far fewer than distinct sides: evict hard
  options.cache_stripes = 4;
  CutQueryService service(options);
  const auto object = service.RegisterGraph(graph);

  // 96 distinct sides, each repeated across tasks so hits and misses mix.
  constexpr int kSides = 96;
  std::vector<VertexSet> sides;
  std::vector<double> expected;
  graph.BuildAdjacency();
  for (int i = 0; i < kSides; ++i) {
    VertexSet side = rng.RandomBinaryString(48);
    side[static_cast<size_t>(i % 48)] = 1;  // never empty
    expected.push_back(graph.CutWeight(side));
    sides.push_back(std::move(side));
  }

  constexpr int64_t kTasks = 24;
  std::vector<int> mismatches(static_cast<size_t>(kTasks), 0);
  for (const int threads : {2, 4, 8}) {
    ParallelFor(threads, kTasks, [&](int64_t task) {
      Rng local(SubtaskSeed(4242, task));
      for (int round = 0; round < 20; ++round) {
        std::vector<CutQueryService::Query> batch;
        for (int i = 0; i < 16; ++i) {
          const auto pick = static_cast<size_t>(local.UniformInt(kSides));
          batch.push_back({object, sides[pick]});
        }
        const std::vector<double> answers = service.AnswerBatch(batch);
        for (size_t i = 0; i < batch.size(); ++i) {
          // Identify the side by membership (batch stores copies).
          for (int s = 0; s < kSides; ++s) {
            if (sides[static_cast<size_t>(s)] == batch[i].side) {
              if (answers[i] != expected[static_cast<size_t>(s)]) {
                ++mismatches[static_cast<size_t>(task)];
              }
              break;
            }
          }
        }
      }
    });
  }
  for (const int count : mismatches) {
    Require(count == 0,
            "serve stress: warm answers bit-identical to cold path");
  }
  Require(service.cache_size() <= 16, "serve stress: capacity respected");
}

void StressStreamIngest() {
  // The streaming ingestion pipeline under its full concurrency surface:
  // N producer threads pushing per-producer balanced insert/delete streams
  // (each producer's deletes target only its own inserts, so any
  // interleaving is admissible), racing a thread that repeatedly seals
  // epochs with Barrier() and queries the sealed snapshots. TSan watches
  // the gutter admission/flush hand-off, the apply-mutex serialization,
  // and the snapshot swap; the final digest must equal the serial
  // reference regardless of every interleaving TSan provokes.
  constexpr int kProducers = 4;
  constexpr int kVertices = 48;
  constexpr int kRounds = 4;
  constexpr uint64_t kSeed = 91;
  std::vector<std::vector<EdgeUpdate>> streams;
  for (int p = 0; p < kProducers; ++p) {
    Rng rng(SubtaskSeed(kSeed, p));
    streams.push_back(RandomUpdateStream(kVertices, 4000, 0.3, rng));
  }
  AgmConnectivitySketch reference(kVertices, kRounds, kSeed);
  for (const std::vector<EdgeUpdate>& stream : streams) {
    for (const EdgeUpdate& update : stream) {
      if (update.is_delete) {
        reference.RemoveEdge(update.u, update.v);
      } else {
        reference.AddEdge(update.u, update.v);
      }
    }
  }

  StreamIngestorOptions options;
  options.num_shards = 4;
  options.gutter_capacity = 16;  // small: maximize flush hand-offs
  options.num_threads = 2;
  options.rounds = kRounds;
  options.seed = kSeed;
  StreamIngestor ingestor(kVertices, options);

  std::atomic<bool> done{false};
  std::atomic<int> push_failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ingestor, &streams, &push_failures, p] {
      for (const EdgeUpdate& update : streams[static_cast<size_t>(p)]) {
        if (!ingestor.Push(update).ok()) {
          push_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Concurrent epoch sealing + snapshot queries while producers run.
  std::thread query_thread([&ingestor, &done] {
    int64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto epoch = ingestor.Barrier();
      Require(epoch.ok(), "stream ingest stress: concurrent barrier");
      Require(*epoch > last_epoch,
              "stream ingest stress: epochs strictly increase");
      last_epoch = *epoch;
      const auto snapshot = ingestor.snapshot();
      Require(snapshot->epoch == last_epoch,
              "stream ingest stress: snapshot matches sealed epoch");
      Require(snapshot->components >= 1 &&
                  snapshot->components <= kVertices,
              "stream ingest stress: component count in range");
    }
  });
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  query_thread.join();

  Require(push_failures.load() == 0,
          "stream ingest stress: all balanced pushes admitted");
  const auto final_epoch = ingestor.Barrier();
  Require(final_epoch.ok(), "stream ingest stress: final barrier");
  Require(ingestor.snapshot()->digest == reference.Digest(),
          "stream ingest stress: final digest equals serial reference");
}

void StressShutdownUnderLoad() {
  // The drain-then-stop paths racing live traffic — the SIGTERM story.
  //
  // ThreadPool: a loop is mid-flight on one thread while another calls
  // Shutdown(); the epoch must drain completely (every index exactly once)
  // and post-shutdown loops must degrade to serial, not crash or drop work.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(256);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    std::atomic<bool> started{false};
    std::thread stopper([&] {
      while (!started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      pool.Shutdown();
    });
    pool.ParallelFor(256, [&](int64_t i) {
      started.store(true, std::memory_order_release);
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    stopper.join();
    pool.ParallelFor(256, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < 256; ++i) {
      Require(hits[static_cast<size_t>(i)].load() == 2,
              "shutdown stress: every index ran before and after shutdown");
    }
  }

  // StreamIngestor: producers race Shutdown()'s drain barrier. Every OK
  // Push lands in the final sealed epoch; every refusal is kUnavailable;
  // the accounting balances exactly — no silent loss in either direction.
  for (int round = 0; round < 10; ++round) {
    constexpr int kVertices = 32;
    StreamIngestorOptions options;
    options.num_shards = 4;
    options.gutter_capacity = 16;
    options.num_threads = 2;
    options.seed = 71 + static_cast<uint64_t>(round);
    StreamIngestor ingestor(kVertices, options);
    std::atomic<int64_t> accepted{0};
    std::atomic<int> bad_rejections{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(SubtaskSeed(options.seed, 100 + p));
        for (int i = 0; i < 3000; ++i) {
          const auto u = static_cast<VertexId>(rng.UniformInt(kVertices));
          auto v = u;
          while (v == u) {
            v = static_cast<VertexId>(rng.UniformInt(kVertices));
          }
          const Status status = ingestor.PushInsert(u, v);
          if (status.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          } else {
            if (status.code() != StatusCode::kUnavailable) {
              bad_rejections.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      });
    }
    while (accepted.load(std::memory_order_relaxed) < 200) {
      std::this_thread::yield();
    }
    const auto final_epoch = ingestor.Shutdown();
    for (std::thread& producer : producers) producer.join();
    Require(final_epoch.ok(), "shutdown stress: ingestor drain sealed");
    Require(bad_rejections.load() == 0,
            "shutdown stress: refusals are kUnavailable only");
    Require(ingestor.snapshot()->updates_applied == accepted.load(),
            "shutdown stress: every accepted update sealed, none lost");
    Require(ingestor.PushInsert(0, 1).code() == StatusCode::kUnavailable,
            "shutdown stress: post-drain pushes refused");
  }
}

}  // namespace
}  // namespace dcs

int main() {
  dcs::StressThreadPoolReuse();
  dcs::StressBackToBackGrowingLoops();
  dcs::StressSharedGraphReads();
  dcs::StressTrialRunners();
  dcs::StressChannelParallelTransfers();
  dcs::StressServeCacheConcurrency();
  dcs::StressStreamIngest();
  dcs::StressShutdownUnderLoad();
  std::printf("tsan stress: OK\n");
  return 0;
}
