#include "sketch/serialization.h"

#include <limits>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(SerializationTest, DirectedGraphRoundTrip) {
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(12, 0.4, 3.0, rng);
  BitWriter writer;
  SerializeDirectedGraph(g, writer);
  BitReader reader(writer.bytes());
  const DirectedGraph back = DeserializeDirectedGraph(reader).value();
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (int64_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edges()[static_cast<size_t>(i)],
              g.edges()[static_cast<size_t>(i)]);
  }
}

TEST(SerializationTest, UndirectedGraphRoundTrip) {
  Rng rng(2);
  const UndirectedGraph g =
      RandomUndirectedGraph(15, 0.3, 0.5, 2.5, true, rng);
  BitWriter writer;
  SerializeUndirectedGraph(g, writer);
  BitReader reader(writer.bytes());
  const UndirectedGraph back = DeserializeUndirectedGraph(reader).value();
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  const VertexSet side = MakeVertexSet(15, {0, 3, 7, 9});
  EXPECT_DOUBLE_EQ(back.CutWeight(side), g.CutWeight(side));
}

TEST(SerializationTest, EmptyGraph) {
  const DirectedGraph g(5);
  BitWriter writer;
  SerializeDirectedGraph(g, writer);
  BitReader reader(writer.bytes());
  const DirectedGraph back = DeserializeDirectedGraph(reader).value();
  EXPECT_EQ(back.num_vertices(), 5);
  EXPECT_EQ(back.num_edges(), 0);
}

TEST(SerializationTest, DoubleVectorRoundTrip) {
  const std::vector<double> values = {0.0, -1.25, 3e17, 1e-300};
  BitWriter writer;
  SerializeDoubleVector(values, writer);
  BitReader reader(writer.bytes());
  EXPECT_EQ(DeserializeDoubleVector(reader).value(), values);
}

TEST(SerializationTest, SizeInBitsMatchesWriter) {
  Rng rng(3);
  const UndirectedGraph g =
      RandomUndirectedGraph(10, 0.5, 1.0, 1.0, false, rng);
  BitWriter writer;
  SerializeUndirectedGraph(g, writer);
  EXPECT_EQ(SerializedSizeInBits(g), writer.bit_count());
}

TEST(SerializationTest, SizeGrowsWithEdges) {
  UndirectedGraph small(10);
  small.AddEdge(0, 1, 1.0);
  UndirectedGraph large(10);
  for (int v = 0; v + 1 < 10; ++v) large.AddEdge(v, v + 1, 1.0);
  EXPECT_LT(SerializedSizeInBits(small), SerializedSizeInBits(large));
}

TEST(SerializationTest, MultipleGraphsInOneStream) {
  const DirectedGraph a = CompleteBipartiteDigraph(2, 2, 1.0, 0.5);
  const UndirectedGraph b = CycleGraph(4, 2.0);
  BitWriter writer;
  SerializeDirectedGraph(a, writer);
  SerializeUndirectedGraph(b, writer);
  BitReader reader(writer.bytes());
  const DirectedGraph a_back = DeserializeDirectedGraph(reader).value();
  const UndirectedGraph b_back = DeserializeUndirectedGraph(reader).value();
  EXPECT_EQ(a_back.num_edges(), a.num_edges());
  EXPECT_EQ(b_back.num_edges(), b.num_edges());
}

// Serializes the graph-payload fields by hand so corrupt field values can
// be wrapped in a valid envelope (checksum intact) and must be caught by
// the field validation itself.
BitWriter EnvelopedDirectedPayload(const std::vector<uint64_t>& gammas,
                                   double weight) {
  BitWriter payload;
  for (uint64_t g : gammas) payload.WriteEliasGamma(g);
  payload.WriteDouble(weight);
  BitWriter writer;
  WriteEnvelope(StreamKind::kDirectedGraph, payload, writer);
  return writer;
}

TEST(SerializationStatusTest, DoubleVectorCountCappedByRemainingBits) {
  BitWriter writer;
  // Claims ~10^12 entries with only one value present: must fail before
  // allocating, not attempt a multi-terabyte vector.
  writer.WriteEliasGamma(uint64_t{1} << 40);
  writer.WriteDouble(1.0);
  BitReader reader(writer.bytes());
  const auto result = DeserializeDoubleVector(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationStatusTest, DoubleVectorRejectsNonFiniteEntries) {
  BitWriter writer;
  writer.WriteEliasGamma(1);
  writer.WriteDouble(std::numeric_limits<double>::quiet_NaN());
  BitReader reader(writer.bytes());
  const auto result = DeserializeDoubleVector(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationStatusTest, GraphEdgeCountCappedByRemainingBits) {
  // n=4, m=10^12, no edge data: the count cap must fire.
  const BitWriter writer =
      EnvelopedDirectedPayload({4, uint64_t{1} << 40, 0, 1}, 1.0);
  BitReader reader(writer.bytes());
  const auto result = DeserializeDirectedGraph(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationStatusTest, GraphRejectsOutOfRangeEndpoint) {
  const BitWriter writer = EnvelopedDirectedPayload({3, 1, 0, 7}, 1.0);
  BitReader reader(writer.bytes());
  const auto result = DeserializeDirectedGraph(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationStatusTest, GraphRejectsSelfLoop) {
  const BitWriter writer = EnvelopedDirectedPayload({3, 1, 2, 2}, 1.0);
  BitReader reader(writer.bytes());
  EXPECT_FALSE(DeserializeDirectedGraph(reader).ok());
}

TEST(SerializationStatusTest, GraphRejectsNaNWeight) {
  const BitWriter writer = EnvelopedDirectedPayload(
      {3, 1, 0, 1}, std::numeric_limits<double>::quiet_NaN());
  BitReader reader(writer.bytes());
  const auto result = DeserializeDirectedGraph(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationStatusTest, GraphRejectsNegativeWeight) {
  const BitWriter writer = EnvelopedDirectedPayload({3, 1, 0, 1}, -2.0);
  BitReader reader(writer.bytes());
  EXPECT_FALSE(DeserializeDirectedGraph(reader).ok());
}

TEST(SerializationStatusTest, WrongStreamKindRejected) {
  const UndirectedGraph g = CycleGraph(4, 1.0);
  BitWriter writer;
  SerializeUndirectedGraph(g, writer);
  BitReader reader(writer.bytes());
  const auto result = DeserializeDirectedGraph(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationStatusTest, EmptyStreamRejected) {
  const std::vector<uint8_t> empty;
  BitReader reader(empty);
  EXPECT_FALSE(DeserializeDirectedGraph(reader).ok());
}

TEST(SerializationTest, FuzzRoundTripManyRandomGraphs) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    const int n = 2 + static_cast<int>(rng.UniformInt(30));
    const double p = rng.UniformDouble();
    const DirectedGraph g = RandomBalancedDigraph(
        n, p, 1.0 + 4 * rng.UniformDouble(), rng);
    BitWriter writer;
    SerializeDirectedGraph(g, writer);
    BitReader reader(writer.bytes());
    const DirectedGraph back = DeserializeDirectedGraph(reader).value();
    ASSERT_EQ(back.num_edges(), g.num_edges()) << "seed " << seed;
    ASSERT_EQ(reader.position(), writer.bit_count()) << "seed " << seed;
    for (int64_t i = 0; i < g.num_edges(); ++i) {
      ASSERT_EQ(back.edges()[static_cast<size_t>(i)],
                g.edges()[static_cast<size_t>(i)])
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dcs
