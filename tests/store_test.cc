// Disk-backed sketch store (store/sketch_store.h) round-trip and recovery
// tests.
//
// The central property: random mixes of ALL nine StreamKinds appended
// across seal/no-seal reopen cycles come back memcmp-identical after the
// store is "killed" (destructor closes without sealing) and reopened —
// the store may lose an unsealed tail to a crash, but it must never serve
// different bytes than were put. Plus fsck classification over a
// deliberately torn tail, compaction reclaim, and the warm-tier cache
// snapshot round trip.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "serve/query_cache.h"
#include "sketch/cut_balance_sparsifier.h"
#include "sketch/directed_sketches.h"
#include "sketch/sampled_sketches.h"
#include "sketch/serialization.h"
#include "store/cache_snapshot.h"
#include "store/segment.h"
#include "store/sketch_store.h"
#include "stream/binary_stream.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {
namespace {

// A fresh scratch directory per test, removed (recursively, one level) on
// destruction.
class ScratchDir {
 public:
  ScratchDir() {
    char temp[] = "/tmp/dcs_store_test_XXXXXX";
    path_ = ::mkdtemp(temp);
  }
  ~ScratchDir() {
    const std::string command = "rm -rf '" + path_ + "'";
    if (std::system(command.c_str()) != 0) {
      // Best-effort cleanup; nothing to assert on in a destructor.
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct TestObject {
  StreamKind kind = StreamKind::kDirectedGraph;
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
};

// One valid envelope of every StreamKind, deterministic in `rng`. Variety
// in sizes is deliberate: some payloads span several hundred bytes, the
// segment-index one is tiny.
std::vector<TestObject> MakeOneOfEachKind(Rng& rng) {
  std::vector<TestObject> objects;
  auto add = [&objects](StreamKind kind, const BitWriter& writer) {
    objects.push_back(TestObject{kind, writer.bytes(), writer.bit_count()});
  };
  const int n = 8 + static_cast<int>(rng.UniformInt(8));
  const DirectedGraph digraph = RandomBalancedDigraph(n, 0.5, 2.0, rng);
  const UndirectedGraph ugraph =
      RandomUndirectedGraph(n, 0.5, 0.25, 1.5, true, rng);
  {
    BitWriter writer;
    SerializeDirectedGraph(digraph, writer);
    add(StreamKind::kDirectedGraph, writer);
  }
  {
    BitWriter writer;
    SerializeUndirectedGraph(ugraph, writer);
    add(StreamKind::kUndirectedGraph, writer);
  }
  {
    BitWriter writer;
    ForEachCutSketch(ugraph, 0.4, rng).Serialize(writer);
    add(StreamKind::kForEachSketch, writer);
  }
  {
    BitWriter writer;
    BenczurKargerSparsifier(ugraph, 0.4, rng).Serialize(writer);
    add(StreamKind::kForAllSparsifier, writer);
  }
  {
    BitWriter writer;
    DirectedForEachSketch(digraph, 0.4, 2.0, rng).Serialize(writer);
    add(StreamKind::kDirectedForEachSketch, writer);
  }
  {
    BitWriter writer;
    DirectedForAllSketch(digraph, 0.4, 2.0, rng).Serialize(writer);
    add(StreamKind::kDirectedForAllSketch, writer);
  }
  {
    BinaryStreamWriter stream(n);
    for (const EdgeUpdate& update :
         RandomUpdateStream(n, 20 + static_cast<int64_t>(rng.UniformInt(20)),
                            0.2, rng)) {
      stream.Append(update);
    }
    BitWriter writer;
    stream.Seal(writer);
    add(StreamKind::kEdgeStream, writer);
  }
  {
    BitWriter writer;
    CutBalanceSparsifier(digraph, 0.4, 2.0, rng).Serialize(writer);
    add(StreamKind::kCutBalanceSparsifier, writer);
  }
  {
    std::vector<SegmentIndexEntry> entries;
    for (int e = 0; e < 3; ++e) {
      SegmentIndexEntry entry;
      entry.object_id = static_cast<int64_t>(rng.UniformInt(1000));
      entry.kind = StreamKind::kDirectedGraph;
      entry.byte_offset = 100 * e;
      entry.byte_length = 50;
      entries.push_back(entry);
    }
    BitWriter writer;
    WriteSegmentIndexEnvelope(entries, writer);
    add(StreamKind::kSegmentIndex, writer);
  }
  return objects;
}

TEST(SketchStoreTest, AllNineKindsRoundTripAcrossReopens) {
  ScratchDir scratch;
  Rng rng(2026);
  // What each object id should currently hold (later puts supersede).
  std::map<int64_t, TestObject> expected;
  int64_t next_id = 0;

  // Three "process lifetimes". The first two end in Seal (a clean drain);
  // the third ends with the destructor only — a crash-equivalent close
  // whose appended records must still be readable after recovery because
  // the bytes were written through, just not sealed.
  for (int lifetime = 0; lifetime < 3; ++lifetime) {
    auto store = SketchStore::Open(scratch.path());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // Everything from prior lifetimes is still there, bit for bit.
    for (const auto& [id, want] : expected) {
      const auto got = (*store)->Get(id);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->kind, want.kind);
      EXPECT_EQ(got->bit_count, want.bit_count);
      EXPECT_EQ(got->bytes, want.bytes);
    }
    const std::vector<TestObject> fresh = MakeOneOfEachKind(rng);
    for (const TestObject& object : fresh) {
      const int64_t id = next_id++;
      ASSERT_TRUE((*store)
                      ->Put(id, object.kind, object.bytes, object.bit_count)
                      .ok());
      expected[id] = object;
    }
    // Overwrite one earlier object with a different payload: the newest
    // version must win after reopen.
    if (lifetime > 0) {
      const TestObject& replacement = fresh[0];
      ASSERT_TRUE((*store)
                      ->Put(0, replacement.kind, replacement.bytes,
                            replacement.bit_count)
                      .ok());
      expected[0] = replacement;
    }
    if (lifetime < 2) {
      ASSERT_TRUE((*store)->Seal().ok());
    }
  }

  auto reopened = SketchStore::Open(scratch.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_objects(),
            static_cast<int64_t>(expected.size()));
  for (const auto& [id, want] : expected) {
    const auto got = (*reopened)->Get(id);
    ASSERT_TRUE(got.ok()) << "object " << id << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->kind, want.kind) << "object " << id;
    EXPECT_EQ(got->bit_count, want.bit_count) << "object " << id;
    EXPECT_EQ(got->bytes, want.bytes) << "object " << id;
  }
  const auto missing = (*reopened)->Get(next_id + 17);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SketchStoreTest, PutRejectsBytesThatAreNotAnEnvelopeOfTheKind) {
  ScratchDir scratch;
  auto store = SketchStore::Open(scratch.path());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Rng rng(5);
  BitWriter writer;
  SerializeDirectedGraph(RandomBalancedDigraph(6, 0.5, 2.0, rng), writer);
  // Wrong kind for valid bytes: the store must refuse to hold bytes it
  // could not re-serve under the declared kind.
  EXPECT_FALSE((*store)
                   ->Put(0, StreamKind::kUndirectedGraph, writer.bytes(),
                         writer.bit_count())
                   .ok());
  // Garbage bytes under any kind.
  std::vector<uint8_t> garbage(64);
  for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
  EXPECT_FALSE((*store)
                   ->Put(1, StreamKind::kDirectedGraph, garbage, 64 * 8)
                   .ok());
  EXPECT_EQ((*store)->num_objects(), 0);
}

// Appends a valid object, kills the store unsealed, then tears the
// segment's tail mid-record on disk.
void TearActiveSegmentTail(const std::string& dir, int64_t* kept_objects) {
  Rng rng(99);
  const std::vector<TestObject> objects = MakeOneOfEachKind(rng);
  {
    auto store = SketchStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE((*store)
                      ->Put(static_cast<int64_t>(i), objects[i].kind,
                            objects[i].bytes, objects[i].bit_count)
                      .ok());
    }
    // No Seal: the destructor close is the simulated kill.
  }
  // Chop the file inside the second record.
  const std::string segment = dir + "/segment-000001.seg";
  struct stat info;
  ASSERT_EQ(::stat(segment.c_str(), &info), 0);
  const int64_t second_offset = SegmentRecordByteLength(objects[0].bit_count);
  ASSERT_LT(second_offset, info.st_size);
  ASSERT_EQ(::truncate(segment.c_str(),
                       second_offset +
                           (info.st_size - second_offset) / 2),
            0);
  *kept_objects = 1;
}

TEST(SketchStoreTest, FsckClassifiesATornTailWithoutTouchingTheFile) {
  ScratchDir scratch;
  int64_t kept = 0;
  TearActiveSegmentTail(scratch.path(), &kept);

  struct stat before;
  ASSERT_EQ(::stat((scratch.path() + "/segment-000001.seg").c_str(),
                   &before),
            0);
  const auto report = FsckSketchStore(scratch.path());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->segments.size(), 1u);
  EXPECT_EQ(report->segments[0].state, "recovered_torn_tail");
  EXPECT_EQ(report->segments[0].records, kept);
  EXPECT_GT(report->segments[0].dropped_tail_bytes, 0);
  EXPECT_EQ(report->corrupt_segments, 0);
  EXPECT_EQ(report->recovered_segments, 1);
  EXPECT_TRUE(report->clean());
  // fsck is read-only: same size after as before.
  struct stat after;
  ASSERT_EQ(::stat((scratch.path() + "/segment-000001.seg").c_str(),
                   &after),
            0);
  EXPECT_EQ(before.st_size, after.st_size);
}

TEST(SketchStoreTest, OpenRecoversATornTailByTruncating) {
  ScratchDir scratch;
  int64_t kept = 0;
  TearActiveSegmentTail(scratch.path(), &kept);

  auto store = SketchStore::Open(scratch.path());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->get()->open_report().torn_tails_recovered, 1);
  EXPECT_GT(store->get()->open_report().dropped_tail_bytes, 0);
  EXPECT_EQ(store->get()->num_objects(), kept);
  EXPECT_TRUE(store->get()->Get(0).ok());
  EXPECT_EQ(store->get()->Get(1).status().code(), StatusCode::kNotFound);
  // The truncation is durable: a second fsck sees a clean unsealed prefix.
  store->reset();
  const auto report = FsckSketchStore(scratch.path());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->segments[0].state, "unsealed");
  EXPECT_EQ(report->recovered_segments, 0);
}

TEST(SketchStoreTest, MidFileDamageIsDataLossNotRecovery) {
  ScratchDir scratch;
  Rng rng(7);
  const std::vector<TestObject> objects = MakeOneOfEachKind(rng);
  {
    auto store = SketchStore::Open(scratch.path());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)
                    ->Put(0, objects[0].kind, objects[0].bytes,
                          objects[0].bit_count)
                    .ok());
    ASSERT_TRUE((*store)
                    ->Put(1, objects[1].kind, objects[1].bytes,
                          objects[1].bit_count)
                    .ok());
  }
  // Flip a byte inside the FIRST record's payload: committed data is
  // damaged while a later record is intact — truncating would silently
  // discard record 1, so the store must refuse to open.
  const std::string segment = scratch.path() + "/segment-000001.seg";
  FILE* file = std::fopen(segment.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, 40, SEEK_SET), 0);
  const int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, 40, SEEK_SET), 0);
  std::fputc(byte ^ 0x20, file);
  ASSERT_EQ(std::fclose(file), 0);

  const auto store = SketchStore::Open(scratch.path());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().ToString().find("data_loss: segment"),
            std::string::npos)
      << store.status().ToString();

  const auto report = FsckSketchStore(scratch.path());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->segments[0].state, "corrupt");
  EXPECT_FALSE(report->clean());
}

TEST(SketchStoreTest, CompactDropsSupersededVersions) {
  ScratchDir scratch;
  Rng rng(11);
  const std::vector<TestObject> objects = MakeOneOfEachKind(rng);
  auto store = SketchStore::Open(scratch.path());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Five versions of object 0, one of object 1.
  for (int version = 0; version < 5; ++version) {
    ASSERT_TRUE((*store)
                    ->Put(0, objects[0].kind, objects[0].bytes,
                          objects[0].bit_count)
                    .ok());
  }
  ASSERT_TRUE((*store)
                  ->Put(1, objects[1].kind, objects[1].bytes,
                        objects[1].bit_count)
                  .ok());
  const auto report = (*store)->Compact();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records_dropped, 4);
  EXPECT_LT(report->bytes_after, report->bytes_before);
  EXPECT_EQ((*store)->num_objects(), 2);
  const auto got = (*store)->Get(0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->bytes, objects[0].bytes);
  // Compaction leaves exactly one sealed segment behind.
  store->reset();
  const auto fsck = FsckSketchStore(scratch.path());
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  ASSERT_EQ(fsck->segments.size(), 1u);
  EXPECT_EQ(fsck->segments[0].state, "sealed");
}

TEST(CacheSnapshotTest, RoundTripsThroughFileAndCache) {
  ScratchDir scratch;
  const std::string path = scratch.path() + "/cache.snap";
  // Cold boot: missing file is kNotFound, not an error to recover from.
  EXPECT_EQ(ReadCacheSnapshotFile(path).status().code(),
            StatusCode::kNotFound);

  Rng rng(23);
  std::vector<CacheSnapshotEntry> entries;
  for (int e = 0; e < 12; ++e) {
    CacheSnapshotEntry entry;
    entry.object = e % 3;
    entry.side_words = {rng.Next(), rng.Next() & 0xFFFF};
    entry.value = rng.UniformDouble() * 100.0;
    entries.push_back(entry);
  }
  ASSERT_TRUE(WriteCacheSnapshotFile(path, entries).ok());
  const auto reread = ReadCacheSnapshotFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->size(), entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    EXPECT_EQ((*reread)[e].object, entries[e].object);
    EXPECT_EQ((*reread)[e].side_words, entries[e].side_words);
    EXPECT_EQ((*reread)[e].value, entries[e].value);
  }

  // And through the live cache: restore, then look the entries up via the
  // packed-side hash the cache itself uses.
  CutQueryCache::Options cache_options;
  cache_options.capacity = 256;
  cache_options.num_stripes = 4;
  CutQueryCache cache(cache_options);
  std::vector<CutQueryCache::SnapshotEntry> restored;
  for (const CacheSnapshotEntry& entry : *reread) {
    CutQueryCache::SnapshotEntry live;
    live.object = entry.object;
    live.side.words = entry.side_words;
    live.value = entry.value;
    restored.push_back(std::move(live));
  }
  cache.Restore(restored);
  for (const CacheSnapshotEntry& entry : entries) {
    PackedSide side;
    side.words = entry.side_words;
    const auto hit = cache.Lookup(entry.object, HashPackedSide(side), side);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, entry.value);
  }
}

TEST(CacheSnapshotTest, EveryBitFlipOfTheSnapshotIsRejected) {
  // The snapshot is an optimization: any damage must come back kDataLoss
  // (cold cache), never a crash or a wrong entry.
  Rng rng(31);
  std::vector<CacheSnapshotEntry> entries;
  for (int e = 0; e < 4; ++e) {
    CacheSnapshotEntry entry;
    entry.object = e;
    entry.side_words = {rng.Next()};
    entry.value = rng.UniformDouble();
    entries.push_back(entry);
  }
  const std::vector<uint8_t> bytes = EncodeCacheSnapshot(entries);
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<uint8_t> mutated = bytes;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const auto decoded = DecodeCacheSnapshot(mutated);
    ASSERT_FALSE(decoded.ok()) << "flipping snapshot bit " << bit;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeCacheSnapshot(truncated).ok())
        << "truncating snapshot to " << len;
  }
}

}  // namespace
}  // namespace dcs
