// Bit-packed ±1 vectors: round-trips, Hadamard rows, and popcount inner
// products checked against entry-wise arithmetic.

#include "util/sign_vector.h"

#include <vector>

#include "gtest/gtest.h"
#include "util/hadamard.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(SignVectorTest, DefaultIsAllPlusOne) {
  const SignVector v(130);  // spans three words
  EXPECT_EQ(v.size(), 130);
  for (int64_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.Sign(i), 1);
  EXPECT_EQ(v.SumOfSigns(), 130);
}

TEST(SignVectorTest, FromSignsRoundTrips) {
  Rng rng(3);
  for (const int length : {1, 63, 64, 65, 200}) {
    const std::vector<int8_t> signs = rng.RandomSignString(length);
    const SignVector packed = SignVector::FromSigns(signs);
    EXPECT_EQ(packed.ToSigns(), signs) << "length " << length;
    for (int i = 0; i < length; ++i) {
      EXPECT_EQ(packed.Sign(i), signs[static_cast<size_t>(i)]);
    }
  }
}

TEST(SignVectorTest, SetSignUpdatesEntryAndSum) {
  SignVector v(100);
  v.SetSign(0, -1);
  v.SetSign(64, -1);
  v.SetSign(99, -1);
  EXPECT_EQ(v.Sign(0), -1);
  EXPECT_EQ(v.Sign(64), -1);
  EXPECT_EQ(v.Sign(99), -1);
  EXPECT_EQ(v.Sign(1), 1);
  EXPECT_EQ(v.SumOfSigns(), 100 - 2 * 3);
  v.SetSign(64, 1);
  EXPECT_EQ(v.Sign(64), 1);
  EXPECT_EQ(v.SumOfSigns(), 100 - 2 * 2);
}

TEST(SignVectorTest, InnerProductMatchesEntrywise) {
  Rng rng(7);
  for (const int length : {5, 64, 129}) {
    const std::vector<int8_t> a_signs = rng.RandomSignString(length);
    const std::vector<int8_t> b_signs = rng.RandomSignString(length);
    const SignVector a = SignVector::FromSigns(a_signs);
    const SignVector b = SignVector::FromSigns(b_signs);
    int64_t expected = 0;
    for (int i = 0; i < length; ++i) {
      expected += a_signs[static_cast<size_t>(i)] *
                  b_signs[static_cast<size_t>(i)];
    }
    EXPECT_EQ(a.InnerProduct(b), expected) << "length " << length;
  }
}

TEST(SignVectorTest, HadamardRowMatchesMatrixEntries) {
  const int log_size = 6;
  const HadamardMatrix h(log_size);
  for (int row = 0; row < h.size(); ++row) {
    const SignVector packed = SignVector::HadamardRow(row, log_size);
    ASSERT_EQ(packed.size(), h.size());
    for (int col = 0; col < h.size(); ++col) {
      EXPECT_EQ(packed.Sign(col), h.Entry(row, col))
          << "row " << row << " col " << col;
    }
  }
}

TEST(SignVectorTest, HadamardRowsOrthogonalViaPackedInnerProduct) {
  const int log_size = 5;
  const int size = 1 << log_size;
  for (int r1 = 0; r1 < size; ++r1) {
    const SignVector a = SignVector::HadamardRow(r1, log_size);
    for (int r2 = 0; r2 < size; ++r2) {
      const SignVector b = SignVector::HadamardRow(r2, log_size);
      EXPECT_EQ(a.InnerProduct(b), r1 == r2 ? size : 0);
    }
  }
}

}  // namespace
}  // namespace dcs
