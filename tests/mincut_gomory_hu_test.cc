// Gomory–Hu (Gusfield) trees: all pairwise min cuts from n−1 max flows.

#include "mincut/gomory_hu.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/dinic.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(GomoryHuTest, TwoVertices) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 3.5);
  const GomoryHuTree tree(g);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(tree.GlobalMinCutValue(), 3.5);
}

TEST(GomoryHuTest, PathGraphPairwiseCuts) {
  // On a path, min cut between u < v is the lightest edge between them.
  UndirectedGraph g(5);
  const double weights[] = {4, 1, 3, 2};
  for (int v = 0; v < 4; ++v) g.AddEdge(v, v + 1, weights[v]);
  const GomoryHuTree tree(g);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(0, 1), 4);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(0, 4), 1);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(2, 4), 2);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(2, 3), 3);
  EXPECT_DOUBLE_EQ(tree.GlobalMinCutValue(), 1);
}

TEST(GomoryHuTest, MatchesMaxFlowOnAllPairs) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(14, 0.3, 0.5, 2.0, true, rng);
    const GomoryHuTree tree(g);
    for (int u = 0; u < 14; ++u) {
      for (int v = u + 1; v < 14; ++v) {
        EXPECT_NEAR(tree.MinCutValue(u, v),
                    MaxFlowUndirected(g, u, v).flow_value, 1e-6)
            << "seed " << seed << " pair " << u << "," << v;
      }
    }
  }
}

TEST(GomoryHuTest, GlobalMinCutMatchesStoerWagner) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    Rng rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(18, 0.25, 1.0, 3.0, true, rng);
    const GomoryHuTree tree(g);
    EXPECT_NEAR(tree.GlobalMinCutValue(), StoerWagnerMinCut(g).value, 1e-6)
        << "seed " << seed;
  }
}

TEST(GomoryHuTest, DisconnectedGraphGivesZeroCuts) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(2, 3, 5.0);
  const GomoryHuTree tree(g);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(tree.MinCutValue(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(tree.GlobalMinCutValue(), 0.0);
}

TEST(GomoryHuTest, DumbbellStructure) {
  const UndirectedGraph g = DumbbellGraph(6, 2);
  const GomoryHuTree tree(g);
  // Across the bridge: 2. Within a clique: at least 5 (clique degree).
  EXPECT_DOUBLE_EQ(tree.MinCutValue(1, 8), 2.0);
  EXPECT_GE(tree.MinCutValue(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(tree.GlobalMinCutValue(), 2.0);
}

TEST(GomoryHuTest, TreeIsWellFormed) {
  Rng rng(42);
  const UndirectedGraph g =
      RandomUndirectedGraph(12, 0.4, 1.0, 1.0, true, rng);
  const GomoryHuTree tree(g);
  EXPECT_EQ(tree.parent(0), 0);
  for (int v = 1; v < 12; ++v) {
    EXPECT_GE(tree.parent(v), 0);
    EXPECT_LT(tree.parent(v), 12);
    EXPECT_NE(tree.parent(v), v);
    EXPECT_GT(tree.parent_cut_value(v), 0);
  }
}

}  // namespace
}  // namespace dcs
