// Undirected sketches: exactness of the baseline, for-all accuracy of the
// Benczúr–Karger sparsifier over *enumerated* cuts, unbiasedness and
// size/accuracy behavior of the for-each sampler, and median boosting.

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/stoer_wagner.h"
#include "sketch/exact_sketch.h"
#include "sketch/sampled_sketches.h"
#include "util/random.h"
#include "util/stats.h"

namespace dcs {
namespace {

// Enumerates all proper cuts of a small graph and returns the worst
// relative error of the sketch.
double WorstRelativeError(const UndirectedGraph& graph,
                          const UndirectedCutSketch& sketch) {
  const int n = graph.num_vertices();
  double worst = 0;
  for (uint64_t mask = 1; mask + 1 < (1ULL << (n - 1)) * 2; ++mask) {
    VertexSet side(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      side[static_cast<size_t>(v)] = static_cast<uint8_t>((mask >> v) & 1);
    }
    if (!IsProperCutSide(side)) continue;
    const double exact = graph.CutWeight(side);
    if (exact == 0) continue;
    const double estimate = sketch.EstimateCut(side);
    worst = std::max(worst, std::abs(estimate - exact) / exact);
  }
  return worst;
}

TEST(ExactSketchTest, AnswersEveryCutExactly) {
  Rng rng(1);
  const UndirectedGraph g =
      RandomUndirectedGraph(12, 0.3, 0.5, 2.0, true, rng);
  const ExactUndirectedSketch sketch{UndirectedGraph(g)};
  EXPECT_DOUBLE_EQ(WorstRelativeError(g, sketch), 0.0);
  EXPECT_GT(sketch.SizeInBits(), 0);
}

TEST(BenczurKargerTest, ForAllAccuracyOnRandomGraph) {
  Rng gen_rng(2);
  const UndirectedGraph g = CompleteGraph(14, 1.0);
  Rng sketch_rng(3);
  const BenczurKargerSparsifier sketch(g, /*epsilon=*/0.25, sketch_rng,
                                       /*oversample_c=*/3.0);
  // All cuts simultaneously within a modest multiple of ε (constants in the
  // theory are generous; we assert the practical bound 1.5ε).
  EXPECT_LE(WorstRelativeError(g, sketch), 0.375);
}

TEST(BenczurKargerTest, SparsifierIsSmallerOnDenseGraphs) {
  Rng gen_rng(4);
  const UndirectedGraph g = CompleteGraph(60, 1.0);
  Rng sketch_rng(5);
  const BenczurKargerSparsifier sketch(g, 0.4, sketch_rng);
  EXPECT_LT(sketch.sparsifier().num_edges(), g.num_edges());
}

TEST(BenczurKargerTest, SizeShrinksAsEpsilonGrows) {
  const UndirectedGraph g = CompleteGraph(40, 1.0);
  Rng rng1(6);
  Rng rng2(6);
  const BenczurKargerSparsifier tight(g, 0.1, rng1);
  const BenczurKargerSparsifier loose(g, 0.5, rng2);
  EXPECT_GT(tight.sparsifier().num_edges(), loose.sparsifier().num_edges());
}

TEST(BenczurKargerTest, PreservesMinCutValue) {
  const UndirectedGraph g = DumbbellGraph(12, 4);
  Rng rng(7);
  const BenczurKargerSparsifier sketch(g, 0.2, rng, 3.0);
  const double exact = StoerWagnerMinCut(g).value;
  const double sparsified = StoerWagnerMinCut(sketch.sparsifier()).value;
  EXPECT_NEAR(sparsified, exact, 0.4 * exact);
}

TEST(ImportanceSamplingTest, KeepsLowStrengthEdgesDeterministically) {
  // With factor >= 1, a spanning tree's bridge edges have p = 1 and are
  // always kept, so connectivity never degrades.
  Rng gen_rng(8);
  const UndirectedGraph g =
      RandomUndirectedGraph(30, 0.1, 1.0, 1.0, true, gen_rng);
  Rng rng(9);
  const UndirectedGraph sample = ImportanceSampleByStrength(g, 1.0, rng);
  EXPECT_GE(sample.num_edges(), 29);
}

TEST(ForEachSketchTest, UnbiasedOnAFixedCut) {
  Rng gen_rng(10);
  const UndirectedGraph g = CompleteGraph(16, 1.0);
  const VertexSet side = MakeVertexSet(16, {0, 1, 2, 3, 4});
  const double exact = g.CutWeight(side);
  std::vector<double> estimates;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const ForEachCutSketch sketch(g, 0.3, rng);
    estimates.push_back(sketch.EstimateCut(side));
  }
  // Mean over independent sketches concentrates on the exact value.
  EXPECT_NEAR(Mean(estimates), exact, 0.05 * exact);
}

TEST(ForEachSketchTest, PerCutSuccessProbability) {
  // Definition 2.3: each fixed cut within a tolerance with probability 2/3.
  Rng gen_rng(11);
  const UndirectedGraph g = CompleteGraph(16, 1.0);
  const VertexSet side = MakeVertexSet(16, {0, 5, 9});
  const double exact = g.CutWeight(side);
  int hits = 0;
  const int trials = 150;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    Rng rng(seed + 1000);
    const ForEachCutSketch sketch(g, 0.2, rng, 3.0);
    const double estimate = sketch.EstimateCut(side);
    // √ε-grade tolerance for the simple sampler (documented substitution).
    if (std::abs(estimate - exact) <= 0.6 * exact) ++hits;
  }
  EXPECT_GE(hits, (2 * trials) / 3);
}

TEST(ForEachSketchTest, SmallerThanForAllAtSameEpsilon) {
  const UndirectedGraph g = CompleteGraph(48, 1.0);
  Rng rng1(12);
  Rng rng2(12);
  const ForEachCutSketch foreach_sketch(g, 0.1, rng1);
  const BenczurKargerSparsifier forall_sketch(g, 0.1, rng2);
  EXPECT_LT(foreach_sketch.SizeInBits(), forall_sketch.SizeInBits());
}

TEST(DegreeComplementSketchTest, SingletonCutsAreExact) {
  // Singleton cuts have no internal edges, so the degree table answers
  // them with zero error regardless of the sample.
  Rng gen_rng(20);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.4, 0.5, 2.0, true, gen_rng);
  Rng rng(21);
  const DegreeComplementSketch sketch(g, 0.3, rng);
  for (int v = 0; v < 20; ++v) {
    const VertexSet side = MakeVertexSet(20, {v});
    EXPECT_NEAR(sketch.EstimateCut(side), g.CutWeight(side), 1e-9);
  }
}

TEST(DegreeComplementSketchTest, UnbiasedOnGeneralCuts) {
  Rng gen_rng(22);
  const UndirectedGraph g = CompleteGraph(16, 1.0);
  const VertexSet side = MakeVertexSet(16, {0, 1, 2, 3, 4, 5});
  const double exact = g.CutWeight(side);
  std::vector<double> estimates;
  for (uint64_t seed = 0; seed < 150; ++seed) {
    Rng rng(seed + 7);
    const DegreeComplementSketch sketch(g, 0.3, rng);
    estimates.push_back(sketch.EstimateCut(side));
  }
  EXPECT_NEAR(Mean(estimates), exact, 0.07 * exact);
}

TEST(DegreeComplementSketchTest, ErrorGrowsWithInternalWeightNotCut) {
  // Two cuts with the same value but very different internal weights: the
  // degree-complement estimator is far noisier on the dense-side cut,
  // while the crossing-edge estimator treats them alike. This is the
  // ablation's point.
  const int n = 24;
  UndirectedGraph g(n);
  // Dense block on {0..15}, sparse tail 16..23, one crossing edge each.
  for (int u = 0; u < 16; ++u) {
    for (int v = u + 1; v < 16; ++v) g.AddEdge(u, v, 1.0);
  }
  for (int v = 16; v < n; ++v) g.AddEdge(0, v, 1.0);
  // Cut A: separate the dense block (internal weight 120, cut 8).
  VertexSet dense_side(static_cast<size_t>(n), 0);
  for (int v = 0; v < 16; ++v) dense_side[static_cast<size_t>(v)] = 1;
  // Cut B: separate the tail (internal weight 0, cut 8).
  const VertexSet sparse_side = ComplementSet(dense_side);
  ASSERT_DOUBLE_EQ(g.CutWeight(dense_side), 8.0);
  std::vector<double> dense_err, sparse_err;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed + 100);
    const DegreeComplementSketch sketch(g, 0.4, rng);
    dense_err.push_back(std::abs(sketch.EstimateCut(dense_side) - 8.0));
    // For the complement side, degrees differ but internal weight is 0 on
    // the tail side of the identity only if we sum over the tail:
    sparse_err.push_back(std::abs(sketch.EstimateCut(sparse_side) - 8.0));
  }
  // Estimating via the sparse side is exact only when its internal weight
  // is 0 — but EstimateCut(complement) sums tail degrees (internal weight
  // 0), so it is exact; the dense side is noisy.
  EXPECT_LE(Mean(sparse_err), 1e-9);
  EXPECT_GE(Mean(dense_err), 0.5);
}

TEST(DegreeComplementSketchTest, SizeIncludesDegreeTable) {
  const UndirectedGraph g = CompleteGraph(32, 1.0);
  Rng rng(23);
  const DegreeComplementSketch sketch(g, 0.3, rng);
  EXPECT_GE(sketch.SizeInBits(), 64 * 32);
}

TEST(MedianOfSketchesTest, MedianReducesFailureProbability) {
  Rng gen_rng(13);
  const UndirectedGraph g = CompleteGraph(16, 1.0);
  const VertexSet side = MakeVertexSet(16, {0, 1, 7});
  const double exact = g.CutWeight(side);
  int single_hits = 0;
  int median_hits = 0;
  const int trials = 60;
  const double tolerance = 0.35 * exact;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    Rng rng(seed * 17 + 5);
    const ForEachCutSketch single(g, 0.25, rng, 2.0);
    if (std::abs(single.EstimateCut(side) - exact) <= tolerance) {
      ++single_hits;
    }
    std::vector<std::unique_ptr<UndirectedCutSketch>> parts;
    for (int b = 0; b < 5; ++b) {
      parts.push_back(std::make_unique<ForEachCutSketch>(g, 0.25, rng, 2.0));
    }
    const MedianOfSketches median(std::move(parts));
    if (std::abs(median.EstimateCut(side) - exact) <= tolerance) {
      ++median_hits;
    }
  }
  EXPECT_GE(median_hits, single_hits);
  EXPECT_GE(median_hits, (2 * trials) / 3);
}

TEST(MedianOfSketchesTest, SizeIsSumOfParts) {
  const UndirectedGraph g = CompleteGraph(12, 1.0);
  Rng rng(14);
  std::vector<std::unique_ptr<UndirectedCutSketch>> parts;
  int64_t expected = 0;
  for (int b = 0; b < 3; ++b) {
    auto sketch = std::make_unique<ForEachCutSketch>(g, 0.3, rng);
    expected += sketch->SizeInBits();
    parts.push_back(std::move(sketch));
  }
  const MedianOfSketches median(std::move(parts));
  EXPECT_EQ(median.SizeInBits(), expected);
}

}  // namespace
}  // namespace dcs
