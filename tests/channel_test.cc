// Lossy channel + reliable link (DESIGN.md §9): fault injection is a pure
// function of the chaos seed, recovery reproduces the sender's bytes bit
// for bit, the deadline turns unbounded loss into kDeadlineExceeded instead
// of a hang, and every wire/retransmission bit is accounted.

#include "comm/channel.h"

#include <vector>

#include "gtest/gtest.h"
#include "distributed/distributed_mincut.h"
#include "graph/generators.h"
#include "lowerbound/cut_oracle.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/protocols.h"
#include "util/metrics.h"
#include "util/random.h"

namespace dcs {
namespace {

Message RandomMessage(int64_t bits, uint64_t seed) {
  Rng rng(seed);
  BitWriter writer;
  for (int64_t b = 0; b < bits; ++b) {
    writer.WriteBit(static_cast<int>(rng.Next() & 1));
  }
  return SealMessage(writer);
}

TEST(ChannelFrameTest, RoundTripsHeaderAndPayload) {
  BitWriter payload;
  for (int b = 0; b < 37; ++b) payload.WriteBit(b % 3 == 0);
  BitWriter framed;
  WriteChannelFrame(/*seq=*/2, /*total_chunks=*/5, /*message_bits=*/9001,
                    payload.bytes(), payload.bit_count(), framed);
  BitReader reader(framed.bytes());
  const ParsedChannelFrame frame = TryParseChannelFrame(reader).value();
  EXPECT_EQ(frame.seq, 2);
  EXPECT_EQ(frame.total_chunks, 5);
  EXPECT_EQ(frame.message_bits, 9001);
  EXPECT_EQ(frame.payload_bits, 37);
  EXPECT_EQ(frame.payload, payload.bytes());
}

TEST(ChannelFrameTest, RejectsWrongMagic) {
  BitWriter framed;
  WriteChannelFrame(0, 1, 8, {0xAB}, 8, framed);
  std::vector<uint8_t> bytes = framed.bytes();
  bytes[0] ^= 0xFF;
  BitReader reader(bytes);
  const auto parsed = TryParseChannelFrame(reader);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(ReliableLinkTest, FaultFreeTransferIsBitIdentical) {
  const Message message = RandomMessage(10007, /*seed=*/3);
  ChannelOptions options;
  options.seed = 1;
  ASSERT_FALSE(options.any_faults());
  ReliableLink link(options);
  const Message delivered = link.Transfer(message).value();
  EXPECT_EQ(delivered.bytes, message.bytes);
  EXPECT_EQ(delivered.bit_count, message.bit_count);
  // Framing and the ACK bitmap are real overhead on the wire; nothing was
  // retransmitted.
  EXPECT_GT(link.stats().wire_bits, message.bit_count);
  EXPECT_EQ(link.stats().retransmitted_bits, 0);
  EXPECT_EQ(link.stats().transfers_recovered, 1);
  EXPECT_EQ(link.stats().rounds, 1);
}

TEST(ReliableLinkTest, RecoversExactBytesUnderEveryFaultKind) {
  const Message message = RandomMessage(9173, /*seed=*/4);
  ChannelOptions options;
  options.seed = 11;
  options.drop_rate = 0.2;
  options.flip_rate = 0.2;
  options.truncate_rate = 0.1;
  options.duplicate_rate = 0.2;
  options.reorder_rate = 0.3;
  options.max_rounds = 64;
  ReliableLink link(options);
  const Message delivered = link.Transfer(message).value();
  EXPECT_EQ(delivered.bytes, message.bytes);
  EXPECT_EQ(delivered.bit_count, message.bit_count);
  // With these rates at least one frame needed another attempt, and every
  // extra attempt is billed both as wire and as retransmission traffic.
  EXPECT_GT(link.stats().retransmitted_bits, 0);
  EXPECT_GE(link.stats().wire_bits,
            message.bit_count + link.stats().retransmitted_bits);
  EXPECT_GT(link.stats().rounds, 1);
}

TEST(ReliableLinkTest, SameSeedReplaysIdenticalTranscriptAndMetrics) {
  const Message message = RandomMessage(6301, /*seed=*/5);
  ChannelOptions options;
  options.seed = 77;
  options.drop_rate = 0.3;
  options.flip_rate = 0.1;
  options.max_rounds = 32;

  const metrics::MetricsSnapshot s0 = metrics::Registry::Get().Snapshot();
  ReliableLink first(options);
  const Message a = first.Transfer(message).value();
  const metrics::MetricsSnapshot s1 = metrics::Registry::Get().Snapshot();
  ReliableLink second(options);
  const Message b = second.Transfer(message).value();
  const metrics::MetricsSnapshot s2 = metrics::Registry::Get().Snapshot();

  EXPECT_EQ(a.bytes, b.bytes);
  const ChannelStats& fs = first.stats();
  const ChannelStats& ss = second.stats();
  EXPECT_EQ(fs.frames_sent, ss.frames_sent);
  EXPECT_EQ(fs.frames_dropped, ss.frames_dropped);
  EXPECT_EQ(fs.frames_flipped, ss.frames_flipped);
  EXPECT_EQ(fs.wire_bits, ss.wire_bits);
  EXPECT_EQ(fs.retransmitted_bits, ss.retransmitted_bits);
  EXPECT_EQ(fs.rounds, ss.rounds);
  // The per-run comm.channel.* metric deltas are identical too — same JSON,
  // byte for byte.
  EXPECT_EQ(s1.DiffSince(s0).ToJsonString(), s2.DiffSince(s1).ToJsonString());
}

TEST(ReliableLinkTest, DifferentSeedsProduceDifferentFaultScripts) {
  const Message message = RandomMessage(6301, /*seed=*/5);
  ChannelOptions options;
  options.drop_rate = 0.4;
  options.max_rounds = 64;
  options.seed = 1;
  ReliableLink first(options);
  ASSERT_TRUE(first.Transfer(message).ok());
  options.seed = 2;
  ReliableLink second(options);
  ASSERT_TRUE(second.Transfer(message).ok());
  EXPECT_NE(first.stats().frames_dropped, second.stats().frames_dropped);
}

TEST(ReliableLinkTest, DeadlineExceededWhenEverythingDrops) {
  const Message message = RandomMessage(4096, /*seed=*/6);
  ChannelOptions options;
  options.seed = 5;
  options.drop_rate = 1.0;
  options.max_rounds = 3;
  ReliableLink link(options);
  const auto result = link.Transfer(message);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(link.stats().transfers_expired, 1);
  EXPECT_EQ(link.stats().rounds, 3);  // gave up at the deadline, no hang
  // Backoff between retransmission rounds is counted, capped-exponential:
  // 1 + 2 for rounds two and three.
  EXPECT_EQ(link.stats().backoff_units, 3);
}

TEST(ReliableLinkTest, BackoffIsCapped) {
  const Message message = RandomMessage(128, /*seed=*/7);
  ChannelOptions options;
  options.seed = 5;
  options.drop_rate = 1.0;
  options.max_rounds = 10;
  options.backoff_cap = 4;
  ReliableLink link(options);
  ASSERT_FALSE(link.Transfer(message).ok());
  // 1 + 2 + 4 + 4 + ... : everything past the cap contributes 4.
  EXPECT_EQ(link.stats().backoff_units, 1 + 2 + 4 * 7);
}

TEST(ReliableLinkTest, JitteredBackoffStaysWithinEqualJitterWindow) {
  const Message message = RandomMessage(128, /*seed=*/7);
  ChannelOptions options;
  options.seed = 5;
  options.drop_rate = 1.0;
  options.max_rounds = 10;
  options.backoff_cap = 4;
  options.backoff_jitter = 0.5;
  ReliableLink link(options);
  ASSERT_FALSE(link.Transfer(message).ok());
  // Rounds 2..10 have capped bases 1, 2, 4, 4, ...; equal-jitter draws each
  // base b > 1 into [max(1, b/2), b] (a base of 1 is exempt), so the total
  // lands in a strict window and never exceeds the unjittered schedule.
  EXPECT_GE(link.stats().backoff_units, 1 + 1 + 2 * 7);
  EXPECT_LE(link.stats().backoff_units, 1 + 2 + 4 * 7);
  // Jitter is deterministic: the same seed replays the same draws.
  ReliableLink replay(options);
  ASSERT_FALSE(replay.Transfer(message).ok());
  EXPECT_EQ(replay.stats().backoff_units, link.stats().backoff_units);
}

TEST(ReliableLinkTest, JitterDoesNotPerturbTheFaultScript) {
  const Message message = RandomMessage(6301, /*seed=*/5);
  ChannelOptions options;
  options.seed = 77;
  options.drop_rate = 0.3;
  options.flip_rate = 0.1;
  options.max_rounds = 32;
  ReliableLink plain(options);
  const Message a = plain.Transfer(message).value();
  options.backoff_jitter = 0.9;
  ReliableLink jittered(options);
  const Message b = jittered.Transfer(message).value();
  // Jitter draws come from a dedicated derived stream, so toggling jitter
  // must not shift a single fault: identical deliveries, drops, flips, and
  // wire accounting — only the backoff schedule changes.
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(plain.stats().frames_sent, jittered.stats().frames_sent);
  EXPECT_EQ(plain.stats().frames_dropped, jittered.stats().frames_dropped);
  EXPECT_EQ(plain.stats().frames_flipped, jittered.stats().frames_flipped);
  EXPECT_EQ(plain.stats().wire_bits, jittered.stats().wire_bits);
  EXPECT_EQ(plain.stats().rounds, jittered.stats().rounds);
  EXPECT_LE(jittered.stats().backoff_units, plain.stats().backoff_units);
}

TEST(ReliableLinkTest, GiveUpIsMarkedAsTransportDeadline) {
  const Message message = RandomMessage(512, /*seed=*/8);
  ChannelOptions options;
  options.seed = 9;
  options.drop_rate = 1.0;
  options.max_rounds = 2;
  ReliableLink link(options);
  const auto result = link.Transfer(message);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // "transport deadline:" is the prefix the serving tier keys on to tell a
  // wire-level retry-budget failure from an application-level deadline.
  EXPECT_EQ(result.status().message().rfind("transport deadline:", 0), 0u);
}

// --- protocol-level recovery invariant (the acceptance criterion) ---

TEST(ProtocolChannelTest, ForEachRecoveredRunDecodesBitIdentically) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  ChannelOptions channel;
  channel.seed = 21;
  channel.drop_rate = 0.4;
  channel.flip_rate = 0.1;
  channel.chunk_payload_bits = 256;  // several chunks even for a tiny sketch
  channel.max_rounds = 64;

  Rng fault_free_rng(9);
  const SketchProtocolResult fault_free =
      RunForEachSketchProtocol(params, 0.05, 20.0, 40, fault_free_rng);
  Rng chaos_rng(9);
  const SketchProtocolResult recovered =
      RunForEachSketchProtocol(params, 0.05, 20.0, 40, chaos_rng, &channel);

  // The channel draws only from its own stream, so a run whose transfers
  // all recover makes the identical decode decisions...
  ASSERT_EQ(recovered.lost_messages, 0);
  EXPECT_EQ(recovered.probes, fault_free.probes);
  EXPECT_EQ(recovered.correct, fault_free.correct);
  EXPECT_EQ(recovered.sketch_bits, fault_free.sketch_bits);
  // ...while the transcript strictly grows: framing + ACKs + every
  // retransmitted bit.
  EXPECT_GT(recovered.message_bits, fault_free.message_bits);
  EXPECT_GT(recovered.retransmitted_bits, 0);
  EXPECT_GE(recovered.message_bits,
            recovered.sketch_bits + recovered.retransmitted_bits);
  EXPECT_FALSE(recovered.degraded());
}

TEST(ProtocolChannelTest, ForAllRecoveredRunDecodesBitIdentically) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 4;
  params.beta = 1;
  params.num_layers = 2;
  ChannelOptions channel;
  channel.seed = 22;
  channel.drop_rate = 0.25;
  channel.max_rounds = 64;

  Rng fault_free_rng(10);
  const SketchProtocolResult fault_free =
      RunForAllSketchProtocol(params, 0.05, 20.0, 6, fault_free_rng);
  Rng chaos_rng(10);
  const SketchProtocolResult recovered =
      RunForAllSketchProtocol(params, 0.05, 20.0, 6, chaos_rng, &channel);

  ASSERT_EQ(recovered.lost_messages, 0);
  EXPECT_EQ(recovered.probes, fault_free.probes);
  EXPECT_EQ(recovered.correct, fault_free.correct);
  EXPECT_GT(recovered.message_bits, fault_free.message_bits);
  // All transport fields are per-trial means, so they must stay mutually
  // comparable: mean wire ≥ mean sketch + mean retransmitted.
  EXPECT_GT(recovered.retransmitted_bits, 0);
  EXPECT_GE(recovered.message_bits,
            recovered.sketch_bits + recovered.retransmitted_bits);
}

TEST(ProtocolChannelTest, PastDeadlineLossDegradesInsteadOfCrashing) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 4;
  params.beta = 1;
  params.num_layers = 2;
  ChannelOptions channel;
  channel.seed = 23;
  channel.drop_rate = 1.0;
  channel.max_rounds = 2;
  Rng rng(11);
  const SketchProtocolResult result =
      RunForAllSketchProtocol(params, 0.05, 20.0, 5, rng, &channel);
  EXPECT_EQ(result.lost_messages, 5);
  EXPECT_EQ(result.probes, 0);  // no decision was fabricated for lost trials
  EXPECT_TRUE(result.degraded());
  EXPECT_GT(result.message_bits, 0);  // the failed attempts still cost bits
}

TEST(ProtocolChannelTest, SameChaosSeedGivesIdenticalTranscripts) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  ChannelOptions channel;
  channel.seed = 31;
  channel.drop_rate = 0.3;
  channel.max_rounds = 32;
  Rng r1(12), r2(12);
  const SketchProtocolResult a =
      RunForEachSketchProtocol(params, 0.05, 20.0, 20, r1, &channel);
  const SketchProtocolResult b =
      RunForEachSketchProtocol(params, 0.05, 20.0, 20, r2, &channel);
  EXPECT_EQ(a.message_bits, b.message_bits);
  EXPECT_EQ(a.retransmitted_bits, b.retransmitted_bits);
  EXPECT_EQ(a.correct, b.correct);
}

// --- cooperative deadline for the exponential for-all enumeration ---

TEST(EnumerationBudgetTest, BudgetOneKeepsInitialSubsetAndTerminates) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 4;
  params.beta = 1;
  params.num_layers = 2;
  ForAllDecoder decoder(params);
  decoder.set_enumeration_budget(1);
  Rng rng(13);
  GapHammingParams gh;
  gh.num_strings = static_cast<int>(params.total_strings());
  gh.string_length = params.inv_epsilon_sq;
  const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
  const ForAllEncoder encoder(params);
  const DirectedGraph graph = encoder.Encode(instance.s);
  const CutOracle oracle = ExactCutOracle(graph);
  const VertexSet subset = decoder.SelectBestSubset(
      instance.index, instance.t, oracle,
      ForAllDecoder::SubsetSelection::kEnumerate);
  // Budget 1 admits only the initial subset {0, 1}: a checkpointed early
  // exit, not a hang or a crash.
  const int k = params.layer_size();
  ASSERT_EQ(static_cast<int>(subset.size()), k);
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(subset[static_cast<size_t>(i)], i < k / 2 ? 1 : 0);
  }
}

TEST(EnumerationBudgetTest, LargeBudgetMatchesUnlimited) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 6;
  params.beta = 1;
  params.num_layers = 2;
  ForAllDecoder unlimited(params);
  ForAllDecoder budgeted(params);
  budgeted.set_enumeration_budget(1 << 20);  // far beyond C(6, 3)
  Rng rng(14);
  GapHammingParams gh;
  gh.num_strings = static_cast<int>(params.total_strings());
  gh.string_length = params.inv_epsilon_sq;
  const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
  const ForAllEncoder encoder(params);
  const DirectedGraph graph = encoder.Encode(instance.s);
  const CutOracle oracle = ExactCutOracle(graph);
  EXPECT_EQ(budgeted.SelectBestSubset(
                instance.index, instance.t, oracle,
                ForAllDecoder::SubsetSelection::kEnumerate),
            unlimited.SelectBestSubset(
                instance.index, instance.t, oracle,
                ForAllDecoder::SubsetSelection::kEnumerate));
}

// --- distributed pipeline over the channel ---

TEST(DistributedChannelTest, FaultFreeChannelMatchesInProcessRun) {
  Rng part_rng(15);
  const UndirectedGraph graph = DumbbellGraph(12, 3);
  DistributedMinCutOptions options;
  options.median_boost = 2;
  options.karger_repetitions = 8;
  Rng build_rng(16);
  const DistributedMinCutPipeline pipeline(
      PartitionEdges(graph, 3, part_rng), options, build_rng);
  ChannelOptions channel;
  channel.seed = 41;  // no fault rates: every transfer recovers in round 1
  Rng r1(17), r2(17);
  const auto in_process = pipeline.Run(r1);
  const auto over_channel = pipeline.Run(r2, channel).value();
  EXPECT_EQ(over_channel.estimate, in_process.estimate);
  EXPECT_EQ(over_channel.best_side, in_process.best_side);
  EXPECT_FALSE(over_channel.degraded);
  EXPECT_TRUE(over_channel.lost_servers.empty());
  EXPECT_DOUBLE_EQ(over_channel.effective_epsilon, options.epsilon);
  EXPECT_GT(over_channel.channel_wire_bits, over_channel.total_bits());
  EXPECT_EQ(over_channel.retransmitted_bits, 0);
}

TEST(DistributedChannelTest, LostServersDegradeGracefully) {
  Rng part_rng(18);
  const UndirectedGraph graph = DumbbellGraph(12, 3);
  DistributedMinCutOptions options;
  options.median_boost = 2;
  options.karger_repetitions = 8;
  Rng build_rng(19);
  const int num_servers = 4;
  const DistributedMinCutPipeline pipeline(
      PartitionEdges(graph, num_servers, part_rng), options, build_rng);
  // Find a chaos seed that loses some but not all servers; the fault
  // script is deterministic, so once found the loss pattern is fixed.
  for (uint64_t chaos_seed = 1; chaos_seed <= 64; ++chaos_seed) {
    ChannelOptions channel;
    channel.seed = chaos_seed;
    channel.drop_rate = 0.18;
    channel.max_rounds = 2;
    Rng rng(20);
    const auto run = pipeline.Run(rng, channel);
    if (!run.ok()) {
      EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
      continue;
    }
    const auto& result = run.value();
    if (result.lost_servers.empty()) continue;
    // Partial loss: degraded but alive, with the loss surfaced.
    EXPECT_TRUE(result.degraded);
    EXPECT_LT(static_cast<int>(result.lost_servers.size()), num_servers);
    EXPECT_GT(result.effective_epsilon, options.epsilon);
    EXPECT_GT(result.estimate, 0);
    EXPECT_GT(result.retransmitted_bits, 0);
    return;
  }
  FAIL() << "no chaos seed in [1, 64] produced a partial loss";
}

TEST(DistributedChannelTest, AllServersLostIsAnErrorNotACrash) {
  Rng part_rng(21);
  const UndirectedGraph graph = DumbbellGraph(10, 2);
  DistributedMinCutOptions options;
  options.median_boost = 2;
  Rng build_rng(22);
  const DistributedMinCutPipeline pipeline(
      PartitionEdges(graph, 2, part_rng), options, build_rng);
  ChannelOptions channel;
  channel.seed = 51;
  channel.drop_rate = 1.0;
  channel.max_rounds = 2;
  Rng rng(23);
  const auto run = pipeline.Run(rng, channel);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace dcs
