// Differential accuracy harness (the bake-off's test half).
//
// Sweeps zoo family × β × ε × backend and holds every registered backend
// to the relative-error bound it advertises, against exact src/mincut
// answers. Also asserts the structural claims the bench reports: planted
// zoo cuts agree with exact solvers, and the cut-balance sparsifier's
// quantized-imbalance storage grows with log β — the dependence the
// paper's Ω(n·log β/ε²) lower bound says no correct sketch can avoid.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "graph/balance.h"
#include "graph/zoo.h"
#include "gtest/gtest.h"
#include "mincut/directed_mincut.h"
#include "serve/cut_query_service.h"
#include "distributed/directed_distributed_mincut.h"
#include "sketch/backend_registry.h"
#include "sketch/cut_balance_sparsifier.h"
#include "util/random.h"

namespace dcs {
namespace {

constexpr int kZooN = 32;

// Probe sides: every singleton, a spread of random sides, and the planted
// side when the family has one. All proper cuts.
std::vector<VertexSet> ProbeSides(const ZooInstance& instance, int random_probes,
                                  uint64_t seed) {
  const int n = instance.graph.num_vertices();
  std::vector<VertexSet> sides;
  for (int v = 0; v < n; ++v) {
    VertexSet side(static_cast<size_t>(n), 0);
    side[static_cast<size_t>(v)] = 1;
    sides.push_back(std::move(side));
  }
  Rng rng(seed);
  for (int probe = 0; probe < random_probes; ++probe) {
    VertexSet side(static_cast<size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      side[static_cast<size_t>(v)] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    if (!IsProperCutSide(side)) side[0] ^= 1;
    sides.push_back(std::move(side));
  }
  if (instance.planted_side.has_value()) {
    sides.push_back(*instance.planted_side);
  }
  return sides;
}

TEST(ZooGroundTruth, PlantedCutsMatchExactSolver) {
  for (const ZooFamily family :
       {ZooFamily::kPlantedCut, ZooFamily::kDumbbell}) {
    for (const double beta : {1.0, 4.0, 16.0}) {
      ZooOptions options;
      options.n = kZooN;
      options.beta = beta;
      options.seed = 7;
      const ZooInstance instance = MakeZooInstance(family, options);
      ASSERT_TRUE(instance.planted_min_cut.has_value());
      ASSERT_TRUE(instance.planted_side.has_value());
      EXPECT_NEAR(instance.graph.CutWeight(*instance.planted_side),
                  *instance.planted_min_cut, 1e-9)
          << ZooFamilyName(family) << " beta=" << beta;
      const GlobalMinCut exact = DirectedGlobalMinCut(instance.graph);
      EXPECT_NEAR(exact.value, *instance.planted_min_cut, 1e-6)
          << ZooFamilyName(family) << " beta=" << beta;
    }
  }
}

TEST(ZooGroundTruth, CertificateMatchesRequestedBeta) {
  for (const ZooFamily family : AllZooFamilies()) {
    for (const double beta : {1.0, 4.0, 16.0}) {
      ZooOptions options;
      options.n = kZooN;
      options.beta = beta;
      options.seed = 11;
      const ZooInstance instance = MakeZooInstance(family, options);
      EXPECT_DOUBLE_EQ(instance.beta_certificate, beta);
      const auto certificate = PerEdgeBalanceCertificate(instance.graph);
      ASSERT_TRUE(certificate.has_value()) << ZooFamilyName(family);
      EXPECT_NEAR(*certificate, beta, 1e-9)
          << ZooFamilyName(family) << " beta=" << beta;
    }
  }
}

// The centerpiece: family × β × ε × backend, every estimate within the
// backend's advertised bound of the exact answer. For-each backends are
// median-boosted (their contract is per-cut success probability, not
// simultaneity; the boost is the paper's own footnote-2 remedy).
TEST(SparsifierDifferential, EveryBackendWithinAdvertisedError) {
  for (const ZooFamily family : AllZooFamilies()) {
    for (const double beta : {1.0, 4.0, 16.0}) {
      for (const double epsilon : {0.15, 0.3}) {
        ZooOptions zoo_options;
        zoo_options.n = kZooN;
        zoo_options.beta = beta;
        zoo_options.seed = 13;
        const ZooInstance instance = MakeZooInstance(family, zoo_options);
        const std::vector<VertexSet> sides = ProbeSides(instance, 16, 17);
        for (const BackendInfo& backend : RegisteredBackends()) {
          BackendOptions options;
          options.epsilon = epsilon;
          options.beta = beta;
          options.seed = 19;
          options.median_boost = 5;
          auto sketch =
              BuildBackendSketch(backend.name, instance.graph, options);
          ASSERT_TRUE(sketch.ok()) << sketch.status().message();
          const double bound = BackendAdvertisedError(backend.name, options);
          for (const VertexSet& side : sides) {
            const double exact = instance.graph.CutWeight(side);
            ASSERT_GT(exact, 0) << "zoo instances are strongly connected";
            const double estimate = (*sketch)->EstimateCut(side);
            EXPECT_LE(std::abs(estimate - exact), bound * exact + 1e-9)
                << backend.name << " on " << ZooFamilyName(family)
                << " beta=" << beta << " eps=" << epsilon;
          }
        }
      }
    }
  }
}

// The log β dependence: with family, n, ε, and seed pinned, the bits the
// cut-balance sketch spends on quantized imbalances must grow as β doubles
// (each doubling adds ~2 bits per skewed vertex) and must dominate
// n·log₂(β)/2 — the shape of the paper's Ω(n·log β) term.
TEST(SparsifierDifferential, CutBalanceImbalanceBitsTrackLogBeta) {
  const int n = 48;
  const double epsilon = 0.25;
  std::vector<double> betas = {2.0, 4.0, 8.0, 16.0, 32.0};
  std::vector<int64_t> imbalance_bits;
  for (const double beta : betas) {
    ZooOptions options;
    options.n = n;
    options.beta = beta;
    options.seed = 23;
    const ZooInstance instance =
        MakeZooInstance(ZooFamily::kExpander, options);
    Rng rng(29);
    const CutBalanceSparsifier sketch(instance.graph, epsilon, beta, rng);
    imbalance_bits.push_back(sketch.imbalance_bits());
  }
  for (size_t i = 0; i + 1 < imbalance_bits.size(); ++i) {
    EXPECT_GE(imbalance_bits[i + 1] - imbalance_bits[i], n / 2)
        << "beta " << betas[i] << " -> " << betas[i + 1];
  }
  for (size_t i = 0; i < betas.size(); ++i) {
    EXPECT_GE(static_cast<double>(imbalance_bits[i]),
              0.5 * n * std::log2(betas[i]))
        << "beta " << betas[i];
  }
}

TEST(SparsifierDifferential, CutBalanceRoundTripPreservesEstimates) {
  ZooOptions options;
  options.n = kZooN;
  options.beta = 8.0;
  options.seed = 31;
  const ZooInstance instance =
      MakeZooInstance(ZooFamily::kPlantedCut, options);
  Rng rng(37);
  const CutBalanceSparsifier sketch(instance.graph, 0.2, 8.0, rng);
  BitWriter writer;
  sketch.Serialize(writer);
  EXPECT_EQ(writer.bit_count(), sketch.SizeInBits());
  BitReader reader(writer.bytes());
  const auto round_tripped = CutBalanceSparsifier::Deserialize(reader);
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.status().message();
  const std::vector<VertexSet> sides = ProbeSides(instance, 8, 41);
  for (const VertexSet& side : sides) {
    EXPECT_DOUBLE_EQ(round_tripped->EstimateCut(side),
                     sketch.EstimateCut(side));
  }
}

TEST(SparsifierDifferential, RegistryRejectsUnknownBackend) {
  const DirectedGraph graph(4);
  const auto result = BuildBackendSketch("cut_blanace", graph, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The error must teach the caller the valid names.
  for (const BackendInfo& backend : RegisteredBackends()) {
    EXPECT_NE(result.status().message().find(backend.name),
              std::string::npos);
  }
}

TEST(SparsifierDifferential, RegistryRejectsBadOptions) {
  ZooOptions zoo_options;
  zoo_options.n = 8;
  const ZooInstance instance =
      MakeZooInstance(ZooFamily::kExpander, zoo_options);
  BackendOptions bad_epsilon;
  bad_epsilon.epsilon = 1.5;
  EXPECT_FALSE(
      BuildBackendSketch("cut_balance", instance.graph, bad_epsilon).ok());
  BackendOptions bad_beta;
  bad_beta.beta = 0.5;
  EXPECT_FALSE(
      BuildBackendSketch("forall", instance.graph, bad_beta).ok());
}

// Serve routing: any backend registers by name and answers batches.
TEST(SparsifierDifferential, ServiceRoutesBackendsByName) {
  ZooOptions zoo_options;
  zoo_options.n = kZooN;
  zoo_options.beta = 4.0;
  zoo_options.seed = 43;
  const ZooInstance instance =
      MakeZooInstance(ZooFamily::kDumbbell, zoo_options);
  CutQueryService service;
  std::vector<CutQueryService::ObjectId> objects;
  for (const BackendInfo& backend : RegisteredBackends()) {
    BackendOptions options;
    options.epsilon = 0.2;
    options.beta = 4.0;
    options.seed = 47;
    options.median_boost = 5;
    const auto object =
        service.RegisterBackendSketch(instance.graph, backend.name, options);
    ASSERT_TRUE(object.ok()) << backend.name;
    objects.push_back(*object);
  }
  EXPECT_FALSE(
      service.RegisterBackendSketch(instance.graph, "nope", {}).ok());
  std::vector<CutQueryService::Query> batch;
  for (const auto object : objects) {
    batch.push_back({object, *instance.planted_side});
  }
  const std::vector<double> answers = service.AnswerBatch(batch);
  const double exact = instance.graph.CutWeight(*instance.planted_side);
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_NEAR(answers[i], exact, exact * 1.0 + 1e-9)
        << RegisteredBackends()[i].name;
  }
}

// Distributed routing: a non-default score backend flows through the
// pipeline end to end and still lands within the coarse+accurate budget.
TEST(SparsifierDifferential, DistributedPipelineRoutesScoreBackend) {
  ZooOptions zoo_options;
  zoo_options.n = kZooN;
  zoo_options.beta = 2.0;
  zoo_options.seed = 53;
  const ZooInstance instance =
      MakeZooInstance(ZooFamily::kPlantedCut, zoo_options);
  const GlobalMinCut exact = DirectedGlobalMinCut(instance.graph);
  for (const std::string backend : {"cut_balance", "exact"}) {
    Rng rng(59);
    DirectedDistributedOptions options;
    options.epsilon = 0.15;
    options.beta = 2.0;
    options.score_backend = backend;
    std::vector<DirectedGraph> servers =
        PartitionDirectedEdges(instance.graph, 3, rng);
    const DirectedDistributedMinCutPipeline pipeline(std::move(servers),
                                                     options, rng);
    const auto result = pipeline.Run(rng);
    EXPECT_GT(result.foreach_bits, 0) << backend;
    EXPECT_NEAR(result.estimate, exact.value, 0.5 * exact.value + 1e-9)
        << backend;
  }
}

}  // namespace
}  // namespace dcs
