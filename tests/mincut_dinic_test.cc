#include "mincut/dinic.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(DinicTest, SingleEdgeFlow) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 3.5);
  const MaxFlowResult r = MaxFlow(g, 0, 1);
  EXPECT_DOUBLE_EQ(r.flow_value, 3.5);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[1]);
}

TEST(DinicTest, NoPathMeansZeroFlow) {
  DirectedGraph g(3);
  g.AddEdge(1, 0, 2.0);  // only points the wrong way
  const MaxFlowResult r = MaxFlow(g, 0, 1);
  EXPECT_DOUBLE_EQ(r.flow_value, 0.0);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style network with known max flow 23.
  DirectedGraph g(6);
  g.AddEdge(0, 1, 16);
  g.AddEdge(0, 2, 13);
  g.AddEdge(1, 3, 12);
  g.AddEdge(2, 1, 4);
  g.AddEdge(2, 4, 14);
  g.AddEdge(3, 2, 9);
  g.AddEdge(3, 5, 20);
  g.AddEdge(4, 3, 7);
  g.AddEdge(4, 5, 4);
  const MaxFlowResult r = MaxFlow(g, 0, 5);
  EXPECT_DOUBLE_EQ(r.flow_value, 23.0);
}

TEST(DinicTest, MinCutSideMatchesFlowValue) {
  Rng rng(11);
  const DirectedGraph g = RandomBalancedDigraph(12, 0.4, 2.0, rng);
  const MaxFlowResult r = MaxFlow(g, 0, 7);
  // Max-flow min-cut: the cut defined by the residual-reachable side has
  // capacity exactly the flow value.
  EXPECT_NEAR(g.CutWeight(r.source_side), r.flow_value, 1e-6);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[7]);
}

TEST(DinicTest, SolverIsReusable) {
  DinicSolver solver(3);
  solver.AddArc(0, 1, 2.0);
  solver.AddArc(1, 2, 1.0);
  const MaxFlowResult first = solver.Solve(0, 2);
  const MaxFlowResult second = solver.Solve(0, 2);
  EXPECT_DOUBLE_EQ(first.flow_value, 1.0);
  EXPECT_DOUBLE_EQ(second.flow_value, 1.0);
  // Different terminals on the same solver.
  const MaxFlowResult third = solver.Solve(0, 1);
  EXPECT_DOUBLE_EQ(third.flow_value, 2.0);
}

TEST(DinicTest, UndirectedFlowUsesBothDirections) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 3, 1.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(2, 3, 1.0);
  const MaxFlowResult r = MaxFlowUndirected(g, 0, 3);
  EXPECT_DOUBLE_EQ(r.flow_value, 2.0);
}

TEST(DinicTest, ParallelEdgesAddCapacity) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(MaxFlow(g, 0, 1).flow_value, 3.5);
}

TEST(DinicTest, EdgeDisjointPathsOnCompleteGraph) {
  // K_5: between any two vertices there are 4 edge-disjoint paths.
  const UndirectedGraph g = CompleteGraph(5, 1.0);
  EXPECT_EQ(CountEdgeDisjointPaths(g, 0, 3), 4);
}

TEST(DinicTest, EdgeDisjointPathsOnCycle) {
  const UndirectedGraph g = CycleGraph(7, 1.0);
  EXPECT_EQ(CountEdgeDisjointPaths(g, 0, 3), 2);
}

TEST(DinicTest, EdgeDisjointPathsCountsMultiplicity) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 1.0);
  EXPECT_EQ(CountEdgeDisjointPaths(g, 0, 1), 3);
}

TEST(DinicDeathTest, SameSourceAndSinkChecks) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  EXPECT_DEATH(MaxFlow(g, 0, 0), "CHECK");
}

}  // namespace
}  // namespace dcs
