// Smoke tests of the `dcs` command-line tool (end-to-end through the shell).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

// Runs the CLI with the given arguments; returns the exit status.
int RunCli(const std::string& args) {
  const std::string command = std::string(DCS_CLI_PATH) + " " + args +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_NE(RunCli(""), 0);
}

TEST(CliTest, UnknownCommandFails) {
  EXPECT_NE(RunCli("frobnicate"), 0);
}

TEST(CliTest, GenerateStatsMincutPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_graph.txt";
  EXPECT_EQ(RunCli("generate --type balanced --n 24 --beta 2 --seed 3 "
                   "--out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind foreach "
                   "--epsilon 0.3"),
            0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind forall "
                   "--epsilon 0.3"),
            0);
}

TEST(CliTest, UndirectedPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_dumbbell.txt";
  EXPECT_EQ(RunCli("generate --type dumbbell --n 20 --k 2 --out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph), 0);
  EXPECT_EQ(RunCli("localquery --in " + graph + " --epsilon 0.3"), 0);
}

TEST(CliTest, EncodeRoundTrips) {
  EXPECT_EQ(RunCli("encode --message hi"), 0);
}

TEST(CliTest, TrialsSubcommand) {
  EXPECT_EQ(RunCli("trials --kind forall --trials 6 --inv-eps-sq 4 "
                   "--beta 1 --noise 0.05 --threads 2"),
            0);
  EXPECT_EQ(RunCli("trials --kind forall --trials 4 --inv-eps-sq 4 "
                   "--beta 1 --mode enumerate"),
            0);
  EXPECT_EQ(RunCli("trials --kind foreach --trials 2 --probes 8 "
                   "--inv-eps 8 --sqrt-beta 1 --threads 2"),
            0);
  EXPECT_NE(RunCli("trials --kind nonsense"), 0);
  EXPECT_NE(RunCli("trials --kind forall --mode nonsense"), 0);
}

// Exit-code contract (tools/dcs_cli.cc): 0 success, 1 runtime/data error,
// 2 usage error. Bad inputs must map to the right code and never abort
// (an abort surfaces as 134, not 1/2).

TEST(CliTest, MissingInputFileExitsOne) {
  EXPECT_EQ(RunCli("mincut --in /nonexistent/graph.txt"), 1);
}

TEST(CliTest, BadFlagSyntaxExitsTwo) {
  EXPECT_EQ(RunCli("generate --out"), 2);  // flag without value
}

TEST(CliTest, NonNumericFlagValueExitsTwo) {
  EXPECT_EQ(RunCli("generate --type balanced --n notanumber "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
  EXPECT_EQ(RunCli("generate --type balanced --p 0.3x "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
}

TEST(CliTest, CorruptGraphFileExitsOne) {
  const std::string path = "/tmp/dcs_cli_test_corrupt.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Header promises two edges; the only edge has an out-of-range endpoint.
  std::fputs("D 3 2\n0 99 1.0\n", f);
  std::fclose(f);
  EXPECT_EQ(RunCli("stats --in " + path + " --directed 1"), 1);
  EXPECT_EQ(RunCli("mincut --in " + path + " --directed 1"), 1);
}

TEST(CliTest, TruncatedGraphFileExitsOne) {
  const std::string path = "/tmp/dcs_cli_test_truncated.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("U 4 3\n0 1 1.0\n", f);
  std::fclose(f);
  EXPECT_EQ(RunCli("stats --in " + path), 1);
}

}  // namespace
