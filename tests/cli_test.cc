// Smoke tests of the `dcs` command-line tool (end-to-end through the shell).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

// Runs the CLI with the given arguments; returns the exit status.
int RunCli(const std::string& args) {
  const std::string command = std::string(DCS_CLI_PATH) + " " + args +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_NE(RunCli(""), 0);
}

TEST(CliTest, UnknownCommandFails) {
  EXPECT_NE(RunCli("frobnicate"), 0);
}

TEST(CliTest, GenerateStatsMincutPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_graph.txt";
  EXPECT_EQ(RunCli("generate --type balanced --n 24 --beta 2 --seed 3 "
                   "--out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind foreach "
                   "--epsilon 0.3"),
            0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind forall "
                   "--epsilon 0.3"),
            0);
}

TEST(CliTest, UndirectedPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_dumbbell.txt";
  EXPECT_EQ(RunCli("generate --type dumbbell --n 20 --k 2 --out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph), 0);
  EXPECT_EQ(RunCli("localquery --in " + graph + " --epsilon 0.3"), 0);
}

TEST(CliTest, EncodeRoundTrips) {
  EXPECT_EQ(RunCli("encode --message hi"), 0);
}

TEST(CliTest, TrialsSubcommand) {
  EXPECT_EQ(RunCli("trials --kind forall --trials 6 --inv-eps-sq 4 "
                   "--beta 1 --noise 0.05 --threads 2"),
            0);
  EXPECT_EQ(RunCli("trials --kind forall --trials 4 --inv-eps-sq 4 "
                   "--beta 1 --mode enumerate"),
            0);
  EXPECT_EQ(RunCli("trials --kind foreach --trials 2 --probes 8 "
                   "--inv-eps 8 --sqrt-beta 1 --threads 2"),
            0);
  EXPECT_NE(RunCli("trials --kind nonsense"), 0);
  EXPECT_NE(RunCli("trials --kind forall --mode nonsense"), 0);
}

TEST(CliTest, MissingInputFileFails) {
  EXPECT_NE(RunCli("mincut --in /nonexistent/graph.txt"), 0);
}

TEST(CliTest, BadFlagSyntaxFails) {
  EXPECT_NE(RunCli("generate --out"), 0);  // flag without value
}

}  // namespace
