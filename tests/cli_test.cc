// Smoke tests of the `dcs` command-line tool (end-to-end through the shell).

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "sketch/backend_registry.h"
#include "util/json.h"

namespace {

std::string ReadFileToString(const std::string& path);

// Runs the CLI with the given arguments; returns the exit status.
int RunCli(const std::string& args) {
  const std::string command = std::string(DCS_CLI_PATH) + " " + args +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_NE(RunCli(""), 0);
}

TEST(CliTest, UnknownCommandFails) {
  EXPECT_NE(RunCli("frobnicate"), 0);
}

TEST(CliTest, GenerateStatsMincutPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_graph.txt";
  EXPECT_EQ(RunCli("generate --type balanced --n 24 --beta 2 --seed 3 "
                   "--out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph + " --directed 1"), 0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind foreach "
                   "--epsilon 0.3"),
            0);
  EXPECT_EQ(RunCli("sketch --in " + graph + " --kind forall "
                   "--epsilon 0.3"),
            0);
}

TEST(CliTest, UndirectedPipeline) {
  const std::string graph = "/tmp/dcs_cli_test_dumbbell.txt";
  EXPECT_EQ(RunCli("generate --type dumbbell --n 20 --k 2 --out " + graph),
            0);
  EXPECT_EQ(RunCli("stats --in " + graph), 0);
  EXPECT_EQ(RunCli("mincut --in " + graph), 0);
  EXPECT_EQ(RunCli("localquery --in " + graph + " --epsilon 0.3"), 0);
}

TEST(CliTest, EncodeRoundTrips) {
  EXPECT_EQ(RunCli("encode --message hi"), 0);
}

TEST(CliTest, TrialsSubcommand) {
  EXPECT_EQ(RunCli("trials --kind forall --trials 6 --inv-eps-sq 4 "
                   "--beta 1 --noise 0.05 --threads 2"),
            0);
  EXPECT_EQ(RunCli("trials --kind forall --trials 4 --inv-eps-sq 4 "
                   "--beta 1 --mode enumerate"),
            0);
  EXPECT_EQ(RunCli("trials --kind foreach --trials 2 --probes 8 "
                   "--inv-eps 8 --sqrt-beta 1 --threads 2"),
            0);
  EXPECT_NE(RunCli("trials --kind nonsense"), 0);
  EXPECT_NE(RunCli("trials --kind forall --mode nonsense"), 0);
}

// --backend routes sketch/serve through the sparsifier backend registry.
// Every registered name must work end to end; a typo is a usage error (2)
// whose stderr lists the valid names.

TEST(CliTest, SketchBackendFlagRoutesEveryRegisteredBackend) {
  const std::string graph = "/tmp/dcs_cli_test_backend_graph.txt";
  ASSERT_EQ(RunCli("generate --type balanced --n 20 --beta 2 --seed 5 "
                   "--out " + graph),
            0);
  for (const dcs::BackendInfo& backend : dcs::RegisteredBackends()) {
    EXPECT_EQ(RunCli("sketch --in " + graph + " --backend " + backend.name +
                     " --epsilon 0.3 --beta 2 --median-boost 3"),
              0)
        << backend.name;
  }
}

TEST(CliTest, ServeBackendFlagRoutesTheRegistry) {
  EXPECT_EQ(RunCli("serve --n 16 --backend cut_balance --rounds 2 "
                   "--batch 16 --pool 8"),
            0);
  EXPECT_EQ(RunCli("serve --n 16 --backend importance --rounds 2 "
                   "--batch 16 --pool 8"),
            0);
  EXPECT_EQ(RunCli("serve --n 16 --backend nope --rounds 2 --batch 16"), 2);
}

TEST(CliTest, BackendTypoExitsTwoAndListsValidNames) {
  const std::string graph = "/tmp/dcs_cli_test_backend_graph.txt";
  ASSERT_EQ(RunCli("generate --type balanced --n 20 --beta 2 --seed 5 "
                   "--out " + graph),
            0);
  const std::string stderr_path = "/tmp/dcs_cli_test_backend_stderr.txt";
  const std::string command = std::string(DCS_CLI_PATH) + " sketch --in " +
                              graph + " --backend cut_blanace" +
                              " > /dev/null 2> " + stderr_path;
  const int status = std::system(command.c_str());
  EXPECT_EQ(WEXITSTATUS(status), 2);
  const std::string message = ReadFileToString(stderr_path);
  for (const dcs::BackendInfo& backend : dcs::RegisteredBackends()) {
    EXPECT_NE(message.find(backend.name), std::string::npos)
        << "stderr must list '" << backend.name << "': " << message;
  }
}

// Exit-code contract (tools/dcs_cli.cc): 0 success, 1 runtime/data error,
// 2 usage error. Bad inputs must map to the right code and never abort
// (an abort surfaces as 134, not 1/2).

TEST(CliTest, MissingInputFileExitsOne) {
  EXPECT_EQ(RunCli("mincut --in /nonexistent/graph.txt"), 1);
}

TEST(CliTest, BadFlagSyntaxExitsTwo) {
  EXPECT_EQ(RunCli("generate --out"), 2);  // flag without value
}

TEST(CliTest, NonNumericFlagValueExitsTwo) {
  EXPECT_EQ(RunCli("generate --type balanced --n notanumber "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
  EXPECT_EQ(RunCli("generate --type balanced --p 0.3x "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
}

TEST(CliTest, OutOfRangeFlagValuesExitTwo) {
  // strtol/strtod overflow (errno == ERANGE) is a usage error, not a
  // silently saturated value leaking into the math: integer flags...
  EXPECT_EQ(RunCli("generate --type balanced --n 99999999999999999999 "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
  // ...double flags overflowing to infinity...
  EXPECT_EQ(RunCli("generate --type balanced --n 8 --p 1e999 "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
  EXPECT_EQ(RunCli("trials --kind foreach --trials 1 --probes 1 "
                   "--noise 1e999"),
            2);
  EXPECT_EQ(RunCli("protocol --kind foreach --sketch-eps 1e999"), 2);
  // ...and literal non-finite values, which parse cleanly but are rejected
  // by the finiteness check.
  EXPECT_EQ(RunCli("generate --type balanced --n 8 --p inf "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
  EXPECT_EQ(RunCli("generate --type balanced --n 8 --p nan "
                   "--out /tmp/dcs_cli_test_unused.txt"),
            2);
}

TEST(CliTest, CorruptGraphFileExitsOne) {
  const std::string path = "/tmp/dcs_cli_test_corrupt.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Header promises two edges; the only edge has an out-of-range endpoint.
  std::fputs("D 3 2\n0 99 1.0\n", f);
  std::fclose(f);
  EXPECT_EQ(RunCli("stats --in " + path + " --directed 1"), 1);
  EXPECT_EQ(RunCli("mincut --in " + path + " --directed 1"), 1);
}

TEST(CliTest, TruncatedGraphFileExitsOne) {
  const std::string path = "/tmp/dcs_cli_test_truncated.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("U 4 3\n0 1 1.0\n", f);
  std::fclose(f);
  EXPECT_EQ(RunCli("stats --in " + path), 1);
}

// --metrics-json=FILE dumps the process metrics registry (DESIGN.md §8)
// after any subcommand. The tests below parse the file back with the
// library's own JSON parser and, when instrumentation is compiled in,
// check the paper's resource counts appear with the expected values.

std::string ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(f);
  return text;
}

// Parses the metrics file and checks the envelope fields shared by every
// subcommand. Returns the parsed document.
dcs::JsonValue ParseMetricsFile(const std::string& path,
                                const std::string& command) {
  const std::string text = ReadFileToString(path);
  EXPECT_FALSE(text.empty()) << "metrics file missing: " << path;
  auto parsed = dcs::ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return dcs::JsonValue();
  const dcs::JsonValue& root = *parsed;
  EXPECT_TRUE(root.is_object());
  const dcs::JsonValue* binary = root.Find("binary");
  EXPECT_NE(binary, nullptr);
  if (binary != nullptr) {
    EXPECT_EQ(binary->string_value(), "dcs");
  }
  const dcs::JsonValue* cmd = root.Find("command");
  EXPECT_NE(cmd, nullptr);
  if (cmd != nullptr) {
    EXPECT_EQ(cmd->string_value(), command);
  }
  EXPECT_NE(root.Find("metrics_enabled"), nullptr);
  EXPECT_NE(root.Find("metrics"), nullptr);
  return std::move(parsed).value();
}

bool MetricsEnabled(const dcs::JsonValue& root) {
  const dcs::JsonValue* enabled = root.Find("metrics_enabled");
  return enabled != nullptr && enabled->is_bool() && enabled->bool_value();
}

TEST(CliTest, MetricsJsonReportsFourCutQueriesPerDecodedBit) {
  const std::string path = "/tmp/dcs_cli_test_metrics_trials.json";
  std::remove(path.c_str());
  ASSERT_EQ(RunCli("trials --kind foreach --trials 2 --probes 4 "
                   "--inv-eps 8 --sqrt-beta 1 --metrics-json=" + path),
            0);
  const dcs::JsonValue root = ParseMetricsFile(path, "trials");
  if (!MetricsEnabled(root)) return;  // OFF build: envelope checks only.
  const dcs::JsonValue* counters = root.Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  // 2 trials × 4 probes = 8 decoded bits, four cut queries each
  // (Lemma 3.2) — the end-to-end paper invariant in the CLI output.
  const dcs::JsonValue* decoded = counters->Find("foreach.bit.decoded");
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->int_value(), 8);
  const dcs::JsonValue* queries = counters->Find("cutoracle.session.query");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->int_value(), 4 * 8);
}

TEST(CliTest, MetricsJsonRecordsSerializedSketchBits) {
  const std::string graph = "/tmp/dcs_cli_test_metrics_graph.txt";
  const std::string path = "/tmp/dcs_cli_test_metrics_sketch.json";
  std::remove(path.c_str());
  ASSERT_EQ(RunCli("generate --type balanced --n 16 --beta 2 --seed 7 "
                   "--out " + graph),
            0);
  // Space-separated flag form, exercising both --key=value and --key value.
  ASSERT_EQ(RunCli("sketch --in " + graph + " --kind foreach "
                   "--epsilon 0.3 --metrics-json " + path),
            0);
  const dcs::JsonValue root = ParseMetricsFile(path, "sketch");
  if (!MetricsEnabled(root)) return;
  const dcs::JsonValue* metrics = root.Find("metrics");
  const dcs::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const dcs::JsonValue* written =
      counters->Find("serialization.envelope.written");
  ASSERT_NE(written, nullptr);
  EXPECT_GE(written->int_value(), 1);
  // The per-kind bit-size distribution for the sketch that was built.
  const dcs::JsonValue* distributions = metrics->Find("distributions");
  ASSERT_NE(distributions, nullptr);
  const dcs::JsonValue* bits = distributions->Find(
      "serialization.payload_bits.directed_foreach_sketch");
  ASSERT_NE(bits, nullptr);
  const dcs::JsonValue* count = bits->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_GE(count->int_value(), 1);
  const dcs::JsonValue* sum = bits->Find("sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_GT(sum->number_value(), 0);
}

TEST(CliTest, MetricsJsonWrittenEvenWhenCommandFails) {
  const std::string path = "/tmp/dcs_cli_test_metrics_fail.json";
  std::remove(path.c_str());
  EXPECT_EQ(RunCli("mincut --in /nonexistent/graph.txt --metrics-json=" +
                   path),
            1);
  const dcs::JsonValue root = ParseMetricsFile(path, "mincut");
  EXPECT_TRUE(root.is_object());
}

// Lossy-channel subcommands (DESIGN.md §9): `protocol` and `distributed`
// run fault-free and under --chaos-* flags, malformed chaos flags are
// usage errors, and a chaos run is a pure function of --chaos-seed.

// Runs the CLI capturing stdout (stderr discarded); returns the exit code.
int RunCliCapture(const std::string& args, std::string* out) {
  const std::string path = "/tmp/dcs_cli_test_capture.txt";
  const std::string command = std::string(DCS_CLI_PATH) + " " + args +
                              " > " + path + " 2> /dev/null";
  const int status = std::system(command.c_str());
  *out = ReadFileToString(path);
  return WEXITSTATUS(status);
}

TEST(CliTest, ServeSubcommand) {
  EXPECT_EQ(RunCli("serve --n 32 --rounds 3 --batch 64 --pool 8 "
                   "--threads 2 --seed 5"),
            0);
  EXPECT_EQ(RunCli("serve --n 32 --rounds 2 --batch 32 --pool 8 "
                   "--cache 0"),
            0);
  EXPECT_EQ(RunCli("serve --n 1"), 2);
  EXPECT_EQ(RunCli("serve --threads 0"), 2);
}

TEST(CliTest, ServeMetricsJsonCountsLogicalQueries) {
  const std::string path = "/tmp/dcs_cli_test_metrics_serve.json";
  std::remove(path.c_str());
  ASSERT_EQ(RunCli("serve --n 32 --rounds 2 --batch 50 --pool 10 "
                   "--metrics-json=" + path),
            0);
  const dcs::JsonValue root = ParseMetricsFile(path, "serve");
  if (!MetricsEnabled(root)) return;
  const dcs::JsonValue* counters = root.Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  // 2 rounds × 50 queries, every one logical whether cached or not; the
  // 10 distinct sides miss once each and hit for the remaining 90.
  const dcs::JsonValue* logical = counters->Find("serve.query.logical");
  ASSERT_NE(logical, nullptr);
  EXPECT_EQ(logical->int_value(), 100);
  const dcs::JsonValue* misses = counters->Find("serve.cache.misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(misses->int_value(), 10);
  const dcs::JsonValue* hits = counters->Find("serve.cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->int_value(), 90);
}

TEST(CliTest, StreamMakeAndReplayPipeline) {
  const std::string stream = "/tmp/dcs_cli_test_updates.bin";
  EXPECT_EQ(RunCli("stream --make 1 --n 64 --updates 2000 --delete-frac 0.2 "
                   "--seed 5 --out " + stream),
            0);
  // Replay serially, multi-producer, and with k-connectivity snapshots —
  // all against the same stream file.
  EXPECT_EQ(RunCli("stream --in " + stream + " --epochs 2"), 0);
  EXPECT_EQ(RunCli("stream --in " + stream +
                   " --inserters 2 --shards 4 --gutter 64"),
            0);
  EXPECT_EQ(RunCli("stream --in " + stream + " --k 3 --epochs 2"), 0);
}

TEST(CliTest, StreamReplayDigestIdenticalAcrossInserters) {
  const std::string stream = "/tmp/dcs_cli_test_updates_digest.bin";
  ASSERT_EQ(RunCli("stream --make 1 --n 48 --updates 1500 --seed 9 "
                   "--out " + stream),
            0);
  std::string serial, parallel;
  ASSERT_EQ(RunCliCapture("stream --in " + stream + " --inserters 1",
                          &serial),
            0);
  ASSERT_EQ(RunCliCapture("stream --in " + stream +
                              " --inserters 4 --gutter 32",
                          &parallel),
            0);
  // Last line is "final digest <hex>": it must not depend on inserters.
  const auto last_line = [](const std::string& text) {
    const size_t end = text.find_last_not_of('\n');
    const size_t start = text.rfind('\n', end);
    return text.substr(start + 1, end - start);
  };
  EXPECT_EQ(last_line(serial), last_line(parallel));
  EXPECT_NE(serial.find("final digest"), std::string::npos);
}

TEST(CliTest, StreamMissingOrCorruptInputExitsOne) {
  EXPECT_EQ(RunCli("stream --in /nonexistent/updates.bin"), 1);
  const std::string path = "/tmp/dcs_cli_test_corrupt_updates.bin";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const char junk[] = "not an edge stream";
  std::fwrite(junk, 1, sizeof junk, file);
  std::fclose(file);
  EXPECT_EQ(RunCli("stream --in " + path), 1);
}

TEST(CliTest, StreamBadFlagValuesExitTwo) {
  EXPECT_EQ(RunCli("stream --make 1 --n 1"), 2);
  EXPECT_EQ(RunCli("stream --make 1 --delete-frac 1.5"), 2);
  EXPECT_EQ(RunCli("stream --in whatever --inserters 0"), 2);
}

TEST(CliChaosTest, ProtocolSubcommandRunsFaultFreeAndUnderChaos) {
  EXPECT_EQ(RunCli("protocol --kind foreach --probes 8 --seed 3"), 0);
  EXPECT_EQ(RunCli("protocol --kind forall --trials 4 --seed 3"), 0);
  EXPECT_EQ(RunCli("protocol --kind foreach --probes 8 --seed 3 "
                   "--chaos-seed 7 --chaos-drop 0.2 --chaos-flip 0.05"),
            0);
  EXPECT_EQ(RunCli("protocol --kind nonsense"), 2);
}

TEST(CliChaosTest, DistributedSubcommandRunsFaultFreeAndUnderChaos) {
  const std::string graph = "/tmp/dcs_cli_test_chaos_graph.txt";
  ASSERT_EQ(RunCli("generate --type dumbbell --n 16 --k 3 --out " + graph),
            0);
  EXPECT_EQ(RunCli("distributed --in " + graph + " --servers 3 --seed 5"),
            0);
  EXPECT_EQ(RunCli("distributed --in " + graph + " --servers 3 --seed 5 "
                   "--chaos-seed 9 --chaos-drop 0.2"),
            0);
  EXPECT_EQ(RunCli("distributed --in /nonexistent/graph.txt"), 1);
  EXPECT_EQ(RunCli("distributed --in " + graph + " --servers 0"), 2);
}

TEST(CliChaosTest, MalformedChaosFlagsExitTwo) {
  EXPECT_EQ(RunCli("protocol --chaos-drop=1.5"), 2);   // rate > 1
  EXPECT_EQ(RunCli("protocol --chaos-drop=-0.1"), 2);  // rate < 0
  EXPECT_EQ(RunCli("protocol --chaos-rounds 0"), 2);   // no deadline budget
  EXPECT_EQ(RunCli("protocol --chaos-drop notarate"), 2);
}

TEST(CliChaosTest, SameChaosSeedPrintsIdenticalOutput) {
  const std::string args =
      "protocol --kind foreach --probes 16 --seed 4 "
      "--chaos-seed 11 --chaos-drop 0.3 --chaos-flip 0.1";
  std::string first, second;
  ASSERT_EQ(RunCliCapture(args, &first), 0);
  ASSERT_EQ(RunCliCapture(args, &second), 0);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // A recovered chaos run decodes bit-identically to the fault-free run:
  // same protocol line, more transport bits.
  std::string fault_free;
  ASSERT_EQ(RunCliCapture("protocol --kind foreach --probes 16 --seed 4",
                          &fault_free),
            0);
  const std::string decode_line = first.substr(0, first.find('\n'));
  EXPECT_EQ(fault_free.substr(0, fault_free.find('\n')), decode_line);
}

// Counts /tmp entries carrying the cluster subcommand's scratch prefix.
int CountClusterScratchDirs() {
  int count = 0;
  DIR* dir = ::opendir("/tmp");
  if (dir == nullptr) return -1;
  while (struct dirent* entry = ::readdir(dir)) {
    if (std::strncmp(entry->d_name, "dcs_cluster_", 12) == 0) ++count;
  }
  ::closedir(dir);
  return count;
}

TEST(CliClusterTest, ForcedFailuresLeaveNoScratchDirectoryBehind) {
  const int before = CountClusterScratchDirs();
  ASSERT_GE(before, 0);
  // Worker spawn failure after the scratch directory exists (exit 1): the
  // named server binary is not executable.
  EXPECT_EQ(RunCli("cluster --server /nonexistent/dcs_server --workers 2 "
                   "--clients 1 --batches 1 --n 16 --edges 40"),
            1);
  // Flag validation failure, rejected before any scratch state (exit 2).
  EXPECT_EQ(RunCli("cluster --workers 0"), 2);
  EXPECT_EQ(CountClusterScratchDirs(), before);
}

TEST(CliStoreTest, PutGetFsckCompactRoundTrip) {
  const std::string graph = "/tmp/dcs_cli_test_store_graph.txt";
  const std::string out = "/tmp/dcs_cli_test_store_out.txt";
  const std::string dir = "/tmp/dcs_cli_test_store";
  std::system(("rm -rf '" + dir + "'").c_str());
  ASSERT_EQ(RunCli("generate --type balanced --n 24 --beta 2 --seed 7 "
                   "--directed 1 --out " + graph),
            0);
  ASSERT_EQ(RunCli("store --dir " + dir + " --op put --id 3 --in " + graph),
            0);
  ASSERT_EQ(RunCli("store --dir " + dir + " --op get --id 3 --out " + out),
            0);
  EXPECT_EQ(ReadFileToString(out), ReadFileToString(graph));
  EXPECT_EQ(RunCli("store --dir " + dir + " --op fsck"), 0);
  EXPECT_EQ(RunCli("store --dir " + dir + " --op compact"), 0);
  EXPECT_EQ(RunCli("store --dir " + dir + " --op get --id 99 --out " + out),
            1);
  EXPECT_EQ(RunCli("store --dir " + dir + " --op frobnicate"), 2);
  EXPECT_EQ(RunCli("store --op fsck"), 2);  // missing --dir
  std::system(("rm -rf '" + dir + "'").c_str());
}

}  // namespace
