// The local query model: oracle semantics and accounting, VERIFY-GUESS
// accept/reject behavior (Lemma 5.8), and the full min-cut estimators
// (original [BGMP21] vs the paper's Theorem 5.7 modification).

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "localquery/mincut_estimator.h"
#include "localquery/oracle.h"
#include "localquery/verify_guess.h"
#include "lowerbound/twosum_graph.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(GraphOracleTest, DegreeAndNeighborSemantics) {
  UndirectedGraph g(4);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 1.0);  // parallel edge
  GraphOracle oracle(g);
  EXPECT_EQ(oracle.Degree(0), 3);
  EXPECT_EQ(oracle.Degree(3), 0);
  // Neighbors are sorted: 1, 2, 2.
  EXPECT_EQ(oracle.Neighbor(0, 0), 1);
  EXPECT_EQ(oracle.Neighbor(0, 1), 2);
  EXPECT_EQ(oracle.Neighbor(0, 2), 2);
  EXPECT_EQ(oracle.Neighbor(0, 3), std::nullopt);
}

TEST(GraphOracleTest, AdjacencyQueries) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  GraphOracle oracle(g);
  EXPECT_TRUE(oracle.Adjacent(0, 1));
  EXPECT_TRUE(oracle.Adjacent(1, 0));
  EXPECT_FALSE(oracle.Adjacent(0, 2));
}

TEST(GraphOracleTest, QueryAccounting) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  GraphOracle oracle(g);
  oracle.Degree(0);
  oracle.Degree(1);
  oracle.Neighbor(0, 0);
  oracle.Adjacent(0, 2);
  EXPECT_EQ(oracle.counts().degree, 2);
  EXPECT_EQ(oracle.counts().neighbor, 1);
  EXPECT_EQ(oracle.counts().adjacency, 1);
  EXPECT_EQ(oracle.counts().total(), 4);
  // Lemma 5.6 accounting: 2 bits per neighbor/adjacency query.
  EXPECT_EQ(oracle.CommunicationBits(), 4);
  oracle.ResetCounts();
  EXPECT_EQ(oracle.counts().total(), 0);
}

TEST(GraphOracleTest, SlotsEnumerateTheExactNeighborMultiset) {
  Rng rng(77);
  const UndirectedGraph g = UnionOfRandomMatchings(12, 4, rng);
  GraphOracle oracle(g);
  for (int u = 0; u < 12; ++u) {
    const int64_t degree = oracle.Degree(u);
    EXPECT_EQ(degree, 4);
    std::multiset<int> from_slots;
    for (int64_t slot = 0; slot < degree; ++slot) {
      const auto neighbor = oracle.Neighbor(u, slot);
      ASSERT_TRUE(neighbor.has_value());
      from_slots.insert(*neighbor);
    }
    std::multiset<int> truth;
    for (const Edge& e : g.edges()) {
      if (e.src == u) truth.insert(e.dst);
      if (e.dst == u) truth.insert(e.src);
    }
    EXPECT_EQ(from_slots, truth) << "vertex " << u;
  }
}

TEST(GraphOracleDeathTest, RejectsWeightedGraphs) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 2.0);
  EXPECT_DEATH(GraphOracle oracle(g), "CHECK");
}

TEST(VerifyGuessTest, AcceptsGuessBelowMinCut) {
  // Dumbbell with min cut 4; guess t = 2 ≤ k must accept with an accurate
  // estimate.
  const UndirectedGraph g = DumbbellGraph(12, 4);
  GraphOracle oracle(g);
  Rng rng(1);
  const VerifyGuessResult result =
      VerifyGuess(oracle, 2.0, 0.3, rng, 4.0).value();
  EXPECT_TRUE(result.accepted);
  EXPECT_NEAR(result.estimate, 4.0, 1.5);
}

TEST(VerifyGuessTest, RejectsHugeGuess) {
  const UndirectedGraph g = DumbbellGraph(12, 2);
  GraphOracle oracle(g);
  Rng rng(2);
  // t = 600 ≫ k = 2: sampled graph is far too sparse to show a cut of 600.
  const VerifyGuessResult result = VerifyGuess(oracle, 600.0, 0.3, rng).value();
  EXPECT_FALSE(result.accepted);
}

TEST(VerifyGuessTest, SaturatedSamplingIsExact) {
  // Tiny guess forces p = 1: the estimate equals the true min cut.
  const UndirectedGraph g = DumbbellGraph(10, 3);
  GraphOracle oracle(g);
  Rng rng(3);
  const VerifyGuessResult result =
      VerifyGuess(oracle, 1.0, 0.2, rng, 10.0).value();
  EXPECT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.sample_probability, 1.0);
  EXPECT_NEAR(result.estimate, 3.0, 1e-9);
}

TEST(VerifyGuessTest, QueriesScaleInverselyWithGuess) {
  const UndirectedGraph g = CompleteGraph(64, 1.0);
  Rng rng(4);
  GraphOracle oracle_small(g);
  ASSERT_TRUE(VerifyGuess(oracle_small, 2.0, 0.5, rng).ok());
  GraphOracle oracle_large(g);
  ASSERT_TRUE(VerifyGuess(oracle_large, 512.0, 0.5, rng).ok());
  // Neighbor queries shrink roughly in proportion (degree queries are n in
  // both cases).
  EXPECT_GT(oracle_small.counts().neighbor,
            3 * oracle_large.counts().neighbor);
}

class MinCutEstimatorTest : public ::testing::TestWithParam<SearchMode> {};

TEST_P(MinCutEstimatorTest, AccurateOnDumbbell) {
  const UndirectedGraph g = DumbbellGraph(16, 5);
  Rng rng(5);
  const LocalQueryMinCutResult result =
      EstimateMinCutLocalQueries(g, 0.25, GetParam(), rng);
  EXPECT_NEAR(result.estimate, 5.0, 2.0);
  EXPECT_GE(result.verify_guess_calls, 2);
}

TEST_P(MinCutEstimatorTest, AccurateOnRegularMultigraph) {
  Rng gen_rng(6);
  const UndirectedGraph g = UnionOfRandomMatchings(40, 8, gen_rng);
  const double exact = StoerWagnerMinCut(g).value;
  Rng rng(7);
  const LocalQueryMinCutResult result =
      EstimateMinCutLocalQueries(g, 0.3, GetParam(), rng);
  EXPECT_NEAR(result.estimate, exact, 0.45 * exact + 1);
}

TEST_P(MinCutEstimatorTest, CommunicationBitsTrackQueries) {
  const UndirectedGraph g = DumbbellGraph(10, 3);
  Rng rng(8);
  const LocalQueryMinCutResult result =
      EstimateMinCutLocalQueries(g, 0.3, GetParam(), rng);
  EXPECT_EQ(result.communication_bits,
            2 * (result.counts.neighbor + result.counts.adjacency));
}

INSTANTIATE_TEST_SUITE_P(BothModes, MinCutEstimatorTest,
                         ::testing::Values(
                             SearchMode::kOriginalEpsilonSearch,
                             SearchMode::kModifiedConstantSearch));

TEST(MinCutEstimatorTest, ModifiedSearchUsesFewerQueriesAtSmallEpsilon) {
  // Theorem 5.7's point: at small ε the original search pays 1/ε² in every
  // search call and 1/ε⁴-grade work in the final call; the modified search
  // pays 1/ε² only once.
  // Needs the unsaturated sampling regime (ε²k ≫ log n): a
  // high-multiplicity regular multigraph.
  Rng gen_rng(9);
  const UndirectedGraph g = UnionOfRandomMatchings(64, 4096, gen_rng);
  const double epsilon = 0.3;
  int64_t original_queries = 0;
  int64_t modified_queries = 0;
  for (uint64_t seed = 0; seed < 2; ++seed) {
    Rng rng1(seed);
    original_queries += EstimateMinCutLocalQueries(
                            g, epsilon, SearchMode::kOriginalEpsilonSearch,
                            rng1)
                            .counts.total();
    Rng rng2(seed);
    modified_queries += EstimateMinCutLocalQueries(
                            g, epsilon, SearchMode::kModifiedConstantSearch,
                            rng2)
                            .counts.total();
  }
  EXPECT_LT(modified_queries, original_queries);
}

TEST(MinCutEstimatorTest, WorksOnTwoSumHardInstances) {
  // Run the upper-bound algorithm on the lower-bound instances: the
  // estimate must still match 2·INT(x, y).
  std::vector<uint8_t> x(144, 0), y(144, 0);
  // 3 intersections (√144 = 12 ≥ 9 ✓).
  for (int pos : {0, 50, 100}) {
    x[static_cast<size_t>(pos)] = 1;
    y[static_cast<size_t>(pos)] = 1;
  }
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  Rng rng(10);
  const LocalQueryMinCutResult result = EstimateMinCutLocalQueries(
      g, 0.2, SearchMode::kModifiedConstantSearch, rng);
  EXPECT_NEAR(result.estimate, 6.0, 2.0);
}

}  // namespace
}  // namespace dcs
