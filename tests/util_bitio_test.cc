#include "util/bitio.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(BitIoTest, SingleBits) {
  BitWriter writer;
  writer.WriteBit(1);
  writer.WriteBit(0);
  writer.WriteBit(1);
  EXPECT_EQ(writer.bit_count(), 3);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadBit(), 1);
  EXPECT_EQ(reader.ReadBit(), 0);
  EXPECT_EQ(reader.ReadBit(), 1);
}

TEST(BitIoTest, FixedWidthRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0xDEADBEEFCAFEULL, 48);
  writer.WriteBits(5, 3);
  EXPECT_EQ(writer.bit_count(), 51);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadBits(48), 0xDEADBEEFCAFEULL);
  EXPECT_EQ(reader.ReadBits(3), 5u);
}

TEST(BitIoTest, ZeroWidthWritesNothing) {
  BitWriter writer;
  writer.WriteBits(123, 0);
  EXPECT_EQ(writer.bit_count(), 0);
}

TEST(BitIoTest, SixtyFourBitRoundTrip) {
  BitWriter writer;
  writer.WriteBits(std::numeric_limits<uint64_t>::max(), 64);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadBits(64), std::numeric_limits<uint64_t>::max());
}

TEST(BitIoTest, EliasGammaSmallValues) {
  BitWriter writer;
  for (uint64_t v = 0; v < 20; ++v) writer.WriteEliasGamma(v);
  BitReader reader(writer.bytes());
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_EQ(reader.ReadEliasGamma(), v);
  }
}

TEST(BitIoTest, EliasGammaLengths) {
  // gamma(v) costs 2*floor(log2(v+1)) + 1 bits.
  for (const auto& [value, expected_bits] :
       std::vector<std::pair<uint64_t, int64_t>>{
           {0, 1}, {1, 3}, {2, 3}, {3, 5}, {6, 5}, {7, 7}, {1000, 19}}) {
    BitWriter writer;
    writer.WriteEliasGamma(value);
    EXPECT_EQ(writer.bit_count(), expected_bits) << "value=" << value;
  }
}

TEST(BitIoTest, EliasGammaLargeValuesRoundTrip) {
  Rng rng(123);
  BitWriter writer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.Next() >> (rng.Next() % 40));
    writer.WriteEliasGamma(values.back());
  }
  BitReader reader(writer.bytes());
  for (uint64_t v : values) {
    EXPECT_EQ(reader.ReadEliasGamma(), v);
  }
}

TEST(BitIoTest, DoubleRoundTrip) {
  BitWriter writer;
  const std::vector<double> values = {0.0,  -1.5, 3.14159,
                                      1e300, -2.5e-10,
                                      std::numeric_limits<double>::infinity()};
  for (double v : values) writer.WriteDouble(v);
  EXPECT_EQ(writer.bit_count(), static_cast<int64_t>(values.size()) * 64);
  BitReader reader(writer.bytes());
  for (double v : values) {
    EXPECT_EQ(reader.ReadDouble(), v);
  }
}

TEST(BitIoTest, NanRoundTripsBitExactly) {
  BitWriter writer;
  writer.WriteDouble(std::nan(""));
  BitReader reader(writer.bytes());
  EXPECT_TRUE(std::isnan(reader.ReadDouble()));
}

TEST(BitIoTest, MixedStreamRoundTrip) {
  Rng rng(77);
  BitWriter writer;
  struct Record {
    int bit;
    uint64_t gamma;
    uint64_t fixed;
    double real;
  };
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    Record r;
    r.bit = static_cast<int>(rng.Next() & 1);
    r.gamma = rng.UniformInt(100000);
    r.fixed = rng.UniformInt(1 << 20);
    r.real = rng.Normal();
    records.push_back(r);
    writer.WriteBit(r.bit);
    writer.WriteEliasGamma(r.gamma);
    writer.WriteBits(r.fixed, 20);
    writer.WriteDouble(r.real);
  }
  BitReader reader(writer.bytes());
  for (const Record& r : records) {
    EXPECT_EQ(reader.ReadBit(), r.bit);
    EXPECT_EQ(reader.ReadEliasGamma(), r.gamma);
    EXPECT_EQ(reader.ReadBits(20), r.fixed);
    EXPECT_EQ(reader.ReadDouble(), r.real);
  }
  EXPECT_EQ(reader.position(), writer.bit_count());
}

TEST(BitIoTest, PositionTracksReads) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.position(), 0);
  reader.ReadBit();
  EXPECT_EQ(reader.position(), 1);
  reader.ReadBits(2);
  EXPECT_EQ(reader.position(), 3);
}

TEST(BitIoDeathTest, ReadPastEndChecks) {
  BitWriter writer;
  writer.WriteBit(1);
  BitReader reader(writer.bytes());
  reader.ReadBits(8);  // padding bits within the final byte are readable
  EXPECT_DEATH(reader.ReadBit(), "CHECK");
}

TEST(BitIoTryTest, TryReadsMatchTrustedReads) {
  BitWriter writer;
  writer.WriteBit(1);
  writer.WriteBits(0xABCD, 16);
  writer.WriteEliasGamma(12345);
  writer.WriteDouble(-2.75);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.TryReadBit().value(), 1);
  EXPECT_EQ(reader.TryReadBits(16).value(), 0xABCDu);
  EXPECT_EQ(reader.TryReadEliasGamma().value(), 12345u);
  EXPECT_EQ(reader.TryReadDouble().value(), -2.75);
  EXPECT_EQ(reader.position(), writer.bit_count());
}

TEST(BitIoTryTest, OverrunReturnsDataLossNotAbort) {
  const std::vector<uint8_t> empty;
  BitReader reader(empty);
  EXPECT_EQ(reader.TryReadBit().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(reader.TryReadBits(8).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(reader.TryReadEliasGamma().status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(reader.TryReadDouble().status().code(), StatusCode::kDataLoss);
}

TEST(BitIoTryTest, TruncatedDoubleReturnsDataLoss) {
  BitWriter writer;
  writer.WriteBits(0, 40);  // only 40 of the 64 bits a double needs
  BitReader reader(writer.bytes());
  const auto result = reader.TryReadDouble();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(BitIoTryTest, AllZeroGammaPrefixReturnsDataLoss) {
  // A run of zeros longer than any finite Elias-gamma prefix: corrupted
  // data, not an overrun, but still kDataLoss (no valid code starts here).
  BitWriter writer;
  for (int i = 0; i < 80; ++i) writer.WriteBit(0);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.TryReadEliasGamma().status().code(),
            StatusCode::kDataLoss);
}

TEST(BitIoTryTest, RemainingBitsTracksCursor) {
  BitWriter writer;
  writer.WriteBits(0, 16);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.RemainingBits(), 16);
  ASSERT_TRUE(reader.TryReadBits(5).ok());
  EXPECT_EQ(reader.RemainingBits(), 11);
  ASSERT_TRUE(reader.TryReadBits(11).ok());
  EXPECT_EQ(reader.RemainingBits(), 0);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitIoTest, AppendBitsSplicesPayload) {
  BitWriter payload;
  payload.WriteEliasGamma(99);
  payload.WriteBits(0b1011, 4);
  BitWriter outer;
  outer.WriteBits(0b101, 3);  // misaligned on purpose
  outer.AppendBits(payload.bytes(), payload.bit_count());
  EXPECT_EQ(outer.bit_count(), 3 + payload.bit_count());
  BitReader reader(outer.bytes());
  EXPECT_EQ(reader.ReadBits(3), 0b101u);
  EXPECT_EQ(reader.ReadEliasGamma(), 99u);
  EXPECT_EQ(reader.ReadBits(4), 0b1011u);
}

TEST(BitIoTest, AppendBitsEmptyIsNoop) {
  BitWriter outer;
  outer.WriteBit(1);
  const BitWriter empty;
  outer.AppendBits(empty.bytes(), 0);
  EXPECT_EQ(outer.bit_count(), 1);
}

}  // namespace
}  // namespace dcs
