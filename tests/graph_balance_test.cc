// β-balance (Definition 2.1): exact measurement, sampled lower bounds, and
// the per-edge certificate used by the paper's constructions.

#include "graph/balance.h"

#include <limits>

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace dcs {
namespace {

DirectedGraph BidirectedTriangle(double forward, double backward) {
  DirectedGraph g(3);
  for (int v = 0; v < 3; ++v) {
    g.AddEdge(v, (v + 1) % 3, forward);
    g.AddEdge((v + 1) % 3, v, backward);
  }
  return g;
}

TEST(BalanceTest, EulerianCycleIsPerfectlyBalanced) {
  DirectedGraph g(5);
  for (int v = 0; v < 5; ++v) g.AddEdge(v, (v + 1) % 5, 2.0);
  // Every cut has equal weight in both directions on a cycle with uniform
  // weights? No: a directed cycle crosses each cut once in each direction.
  EXPECT_DOUBLE_EQ(MeasureBalanceExact(g), 1.0);
}

TEST(BalanceTest, DirectedCutRatio) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 6.0);
  g.AddEdge(1, 0, 2.0);
  EXPECT_DOUBLE_EQ(DirectedCutRatio(g, MakeVertexSet(2, {0})), 3.0);
  EXPECT_DOUBLE_EQ(DirectedCutRatio(g, MakeVertexSet(2, {1})), 1.0 / 3);
}

TEST(BalanceTest, RatioInfiniteWithoutBackEdge) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 1, 1.0);
  EXPECT_EQ(DirectedCutRatio(g, MakeVertexSet(3, {0})),
            std::numeric_limits<double>::infinity());
}

TEST(BalanceTest, BidirectedTriangleIsBalancedByCyclicSymmetry) {
  // Each cut of the asymmetric bidirected triangle crosses equally many
  // heavy edges in both directions, so the graph is perfectly balanced even
  // though individual edge pairs have ratio 4.
  const DirectedGraph g = BidirectedTriangle(4.0, 1.0);
  EXPECT_DOUBLE_EQ(MeasureBalanceExact(g), 1.0);
}

TEST(BalanceTest, ExactBalanceOfAsymmetricPair) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 4.0);
  g.AddEdge(1, 0, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 1, 1.0);
  g.AddEdge(2, 0, 1.0);
  g.AddEdge(0, 2, 1.0);
  // Cut {0}: forward 5, backward 2 → ratio 2.5 is the worst cut.
  EXPECT_DOUBLE_EQ(MeasureBalanceExact(g), 2.5);
  EXPECT_TRUE(VerifyBalanceExact(g, 2.5));
  EXPECT_FALSE(VerifyBalanceExact(g, 2.4));
}

TEST(BalanceTest, SampledNeverExceedsExact) {
  Rng rng(5);
  const DirectedGraph g = RandomBalancedDigraph(10, 0.5, 3.0, rng);
  const double exact = MeasureBalanceExact(g);
  Rng rng2(6);
  const double sampled = MeasureBalanceSampled(g, rng2, 200);
  EXPECT_LE(sampled, exact + 1e-9);
  EXPECT_GE(sampled, 1.0);
}

TEST(BalanceTest, PerEdgeCertificateBoundsExactBalance) {
  Rng rng(7);
  const DirectedGraph g = RandomBalancedDigraph(10, 0.4, 2.5, rng);
  const std::optional<double> certificate = PerEdgeBalanceCertificate(g);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_NEAR(*certificate, 2.5, 1e-9);
  EXPECT_LE(MeasureBalanceExact(g), *certificate + 1e-9);
}

TEST(BalanceTest, CertificateAbsentWithoutReverseEdges) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 0, 1.0);
  EXPECT_FALSE(PerEdgeBalanceCertificate(g).has_value());
}

TEST(BalanceTest, CertificateHandlesParallelEdges) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 1.0);  // coalesces to 2.0 forward
  g.AddEdge(1, 0, 1.0);
  const std::optional<double> certificate = PerEdgeBalanceCertificate(g);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_DOUBLE_EQ(*certificate, 2.0);
}

TEST(BalanceTest, GeneratorHitsTargetBalance) {
  for (double beta : {1.0, 2.0, 8.0}) {
    Rng rng(static_cast<uint64_t>(beta * 100));
    const DirectedGraph g = RandomBalancedDigraph(12, 0.5, beta, rng);
    EXPECT_TRUE(VerifyBalanceExact(g, beta + 1e-9)) << "beta=" << beta;
  }
}

}  // namespace
}  // namespace dcs
