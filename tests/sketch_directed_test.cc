// Directed sketches for β-balanced graphs: the vertex-imbalance identity,
// the symmetrize-and-difference estimators, and the direct directed
// importance sampler.

#include <cmath>
#include <memory>

#include "graph/balance.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "sketch/directed_sketches.h"
#include "sketch/exact_sketch.h"
#include "util/random.h"
#include "util/stats.h"

namespace dcs {
namespace {

TEST(VertexImbalanceTest, SumsToDirectedDifferenceOnEveryCut) {
  Rng rng(1);
  const DirectedGraph g = RandomBalancedDigraph(12, 0.4, 3.0, rng);
  const std::vector<double> imbalance = VertexImbalances(g);
  Rng cut_rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    VertexSet side(12);
    for (auto& bit : side) bit = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    double d_linear = 0;
    for (int v = 0; v < 12; ++v) {
      if (side[static_cast<size_t>(v)]) {
        d_linear += imbalance[static_cast<size_t>(v)];
      }
    }
    const double d_exact =
        g.CutWeight(side) - g.CutWeight(ComplementSet(side));
    EXPECT_NEAR(d_linear, d_exact, 1e-9);
  }
}

TEST(VertexImbalanceTest, EulerianGraphHasZeroImbalance) {
  Rng rng(3);
  const DirectedGraph g = RandomEulerianDigraph(10, 12, 5, rng);
  for (double d : VertexImbalances(g)) {
    EXPECT_NEAR(d, 0.0, 1e-9);
  }
}

TEST(DirectedForEachSketchTest, EstimatesCutsOnBalancedGraph) {
  Rng gen_rng(4);
  const double beta = 2.0;
  const DirectedGraph g = RandomBalancedDigraph(20, 0.6, beta, gen_rng);
  const VertexSet side = MakeVertexSet(20, {0, 2, 4, 6, 8, 10});
  const double exact = g.CutWeight(side);
  std::vector<double> estimates;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    const DirectedForEachSketch sketch(g, 0.3, beta, rng);
    estimates.push_back(sketch.EstimateCut(side));
  }
  // Unbiased across construction randomness.
  EXPECT_NEAR(Mean(estimates), exact, 0.05 * exact);
}

TEST(DirectedForEachSketchTest, SymmetrizationEpsilonScalesWithBeta) {
  Rng rng(5);
  const DirectedGraph g = RandomBalancedDigraph(10, 0.5, 4.0, rng);
  Rng r1(6), r2(6);
  const DirectedForEachSketch low_beta(g, 0.2, 1.0, r1);
  const DirectedForEachSketch high_beta(g, 0.2, 9.0, r2);
  EXPECT_GT(low_beta.symmetrization_epsilon(),
            high_beta.symmetrization_epsilon());
}

TEST(DirectedForAllSketchTest, AllCutsWithinTolerance) {
  Rng gen_rng(7);
  const double beta = 2.0;
  const DirectedGraph g = RandomBalancedDigraph(10, 0.8, beta, gen_rng);
  Rng rng(8);
  const DirectedForAllSketch sketch(g, 0.3, beta, rng, 3.0);
  const int n = g.num_vertices();
  double worst = 0;
  for (uint64_t mask = 1; mask + 1 < (1ULL << n) - 1; ++mask) {
    VertexSet side(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      side[static_cast<size_t>(v)] = static_cast<uint8_t>((mask >> v) & 1);
    }
    if (!IsProperCutSide(side)) continue;
    const double exact = g.CutWeight(side);
    if (exact <= 0) continue;
    worst = std::max(worst,
                     std::abs(sketch.EstimateCut(side) - exact) / exact);
  }
  EXPECT_LE(worst, 0.45);
}

TEST(DirectedForAllSketchTest, ExactGraphIdentityWhenSamplingIsDense) {
  // With epsilon small on a tiny graph, the sparsifier keeps every edge
  // (p = 1) and the estimator becomes exact: (u + d)/2 == w(S, V∖S).
  Rng gen_rng(9);
  const DirectedGraph g = RandomBalancedDigraph(8, 0.6, 2.0, gen_rng);
  Rng rng(10);
  const DirectedForAllSketch sketch(g, 0.05, 2.0, rng, 10.0);
  for (int v = 0; v < 8; ++v) {
    const VertexSet side = MakeVertexSet(8, {v});
    EXPECT_NEAR(sketch.EstimateCut(side), g.CutWeight(side), 1e-9);
  }
}

TEST(DirectedImportanceSamplerTest, UnbiasedDirectedCuts) {
  Rng gen_rng(11);
  const double beta = 3.0;
  const DirectedGraph g = RandomBalancedDigraph(14, 0.5, beta, gen_rng);
  const VertexSet side = MakeVertexSet(14, {1, 3, 5, 7});
  const double exact = g.CutWeight(side);
  std::vector<double> estimates;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    Rng rng(seed + 50);
    const DirectedImportanceSamplerSketch sketch(g, 0.4, beta, rng);
    estimates.push_back(sketch.EstimateCut(side));
  }
  EXPECT_NEAR(Mean(estimates), exact, 0.06 * exact);
}

TEST(DirectedImportanceSamplerTest, SampleIsSubgraphWithReweighting) {
  Rng gen_rng(12);
  const DirectedGraph g = RandomBalancedDigraph(16, 0.5, 2.0, gen_rng);
  Rng rng(13);
  const DirectedImportanceSamplerSketch sketch(g, 0.5, 2.0, rng, 0.2);
  EXPECT_LE(sketch.sample().num_edges(), g.num_edges());
  for (const Edge& e : sketch.sample().edges()) {
    EXPECT_GT(e.weight, 0);
  }
}

TEST(DirectedSketchSizesTest, SizeOrderingMatchesTheory) {
  // At equal ε and β: for-each ≤ for-all ≤ exact on a dense enough graph.
  Rng gen_rng(14);
  const DirectedGraph g = RandomBalancedDigraph(48, 0.9, 2.0, gen_rng);
  Rng r1(15), r2(15), r3(15);
  const DirectedForEachSketch foreach_sketch(g, 0.15, 2.0, r1);
  const DirectedForAllSketch forall_sketch(g, 0.15, 2.0, r2);
  const ExactDirectedSketch exact_sketch{DirectedGraph(g)};
  EXPECT_LT(foreach_sketch.SizeInBits(), forall_sketch.SizeInBits());
  EXPECT_LT(forall_sketch.SizeInBits(), exact_sketch.SizeInBits());
}

TEST(MedianOfDirectedSketchesTest, MedianTracksExactValue) {
  Rng gen_rng(30);
  const DirectedGraph g = RandomBalancedDigraph(18, 0.5, 2.0, gen_rng);
  const VertexSet side = MakeVertexSet(18, {0, 2, 4, 6});
  const double exact = g.CutWeight(side);
  Rng rng(31);
  std::vector<std::unique_ptr<DirectedCutSketch>> parts;
  int64_t expected_bits = 0;
  for (int b = 0; b < 5; ++b) {
    auto sketch =
        std::make_unique<DirectedForEachSketch>(g, 0.3, 2.0, rng);
    expected_bits += sketch->SizeInBits();
    parts.push_back(std::move(sketch));
  }
  const MedianOfDirectedSketches median(std::move(parts));
  EXPECT_EQ(median.count(), 5);
  EXPECT_EQ(median.SizeInBits(), expected_bits);
  EXPECT_NEAR(median.EstimateCut(side), exact, 0.25 * exact);
}

}  // namespace
}  // namespace dcs
