// Property-based sweeps (parameterized across sizes/densities/seeds) of the
// library's core invariants:
//   * cut identities (degree/handshake, symmetrization, imbalance linearity)
//   * agreement of independent min-cut algorithms
//   * sampling unbiasedness of the sketches
//   * strength bounds of the NI decomposition
//   * balance certificates vs exact balance

#include <cmath>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "graph/balance.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/dinic.h"
#include "mincut/directed_mincut.h"
#include "mincut/gomory_hu.h"
#include "mincut/karger.h"
#include "mincut/nagamochi_ibaraki.h"
#include "mincut/stoer_wagner.h"
#include "sketch/backend_registry.h"
#include "sketch/directed_sketches.h"
#include "sketch/eulerian_sparsifier.h"
#include "sketch/serialization.h"
#include "stream/agm_sketch.h"
#include "sketch/sampled_sketches.h"
#include "util/bitio.h"
#include "util/metrics.h"
#include "util/random.h"

namespace dcs {
namespace {

using SizeDensitySeed = std::tuple<int, double, uint64_t>;

class UndirectedPropertyTest
    : public ::testing::TestWithParam<SizeDensitySeed> {
 protected:
  UndirectedGraph MakeGraph() {
    const auto& [n, p, seed] = GetParam();
    Rng rng(seed);
    return RandomUndirectedGraph(n, p, 0.5, 2.0, true, rng);
  }
};

TEST_P(UndirectedPropertyTest, HandshakeAndCutIdentity) {
  const UndirectedGraph g = MakeGraph();
  const int n = g.num_vertices();
  double degree_sum = 0;
  for (int v = 0; v < n; ++v) degree_sum += g.Degree(v);
  EXPECT_NEAR(degree_sum, 2 * g.TotalWeight(), 1e-9);
  // cut(S) = Σ_{v∈S} deg(v) − 2·w(S, S) for random S.
  Rng rng(std::get<2>(GetParam()) + 1);
  for (int trial = 0; trial < 10; ++trial) {
    VertexSet side(static_cast<size_t>(n));
    for (auto& b : side) b = static_cast<uint8_t>(rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    double inside = 0;
    double degrees = 0;
    for (const Edge& e : g.edges()) {
      if (side[static_cast<size_t>(e.src)] &&
          side[static_cast<size_t>(e.dst)]) {
        inside += e.weight;
      }
    }
    for (int v = 0; v < n; ++v) {
      if (side[static_cast<size_t>(v)]) degrees += g.Degree(v);
    }
    EXPECT_NEAR(g.CutWeight(side), degrees - 2 * inside, 1e-9);
  }
}

TEST_P(UndirectedPropertyTest, MinCutAlgorithmsAgree) {
  const UndirectedGraph g = MakeGraph();
  const double stoer_wagner = StoerWagnerMinCut(g).value;
  Rng rng(std::get<2>(GetParam()) + 2);
  const double karger_stein = KargerSteinMinCut(g, rng, 10).value;
  EXPECT_NEAR(karger_stein, stoer_wagner, 1e-9);
  // Min cut is also min over s-t max flows from vertex 0.
  double flow_min = 1e18;
  for (int t = 1; t < g.num_vertices(); ++t) {
    flow_min = std::min(flow_min, MaxFlowUndirected(g, 0, t).flow_value);
  }
  EXPECT_NEAR(flow_min, stoer_wagner, 1e-6);
}

TEST_P(UndirectedPropertyTest, StoerWagnerSideIsConsistent) {
  const UndirectedGraph g = MakeGraph();
  const GlobalMinCut cut = StoerWagnerMinCut(g);
  EXPECT_TRUE(IsProperCutSide(cut.side));
  EXPECT_NEAR(g.CutWeight(cut.side), cut.value, 1e-9);
}

TEST_P(UndirectedPropertyTest, StrengthsRespectWeightLowerBound) {
  const UndirectedGraph g = MakeGraph();
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  double inverse_sum = 0;
  for (size_t i = 0; i < strengths.size(); ++i) {
    EXPECT_GE(strengths[i], g.edges()[i].weight - 1e-9);
    inverse_sum += g.edges()[i].weight / strengths[i];
  }
  // Σ w_e/λ_e = O(n log(n·W)): the sparsifier size driver.
  const double n = g.num_vertices();
  EXPECT_LE(inverse_sum, 4 * n * std::log2(n + 4));
}

TEST_P(UndirectedPropertyTest, GomoryHuDominatesStrengths) {
  // Every NI strength is a lower bound on the endpoint min cut, which the
  // Gomory-Hu tree reports exactly (geometric peeling adds <= 12.5%).
  const UndirectedGraph g = MakeGraph();
  const GomoryHuTree tree(g);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    EXPECT_LE(strengths[i],
              1.125 * tree.MinCutValue(e.src, e.dst) + 1e-6);
  }
}

TEST_P(UndirectedPropertyTest, GomoryHuGlobalMatchesStoerWagner) {
  const UndirectedGraph g = MakeGraph();
  EXPECT_NEAR(GomoryHuTree(g).GlobalMinCutValue(),
              StoerWagnerMinCut(g).value, 1e-6);
}

TEST_P(UndirectedPropertyTest, AgmComponentCountMatchesTruth) {
  const UndirectedGraph g = MakeGraph();
  // AGM requires unweighted inputs: reuse the topology with unit weights.
  UndirectedGraph unit(g.num_vertices());
  for (const Edge& e : g.edges()) unit.AddEdge(e.src, e.dst, 1.0);
  const AgmConnectivitySketch sketch =
      SketchGraph(unit, 0, std::get<2>(GetParam()) + 11);
  EXPECT_EQ(sketch.CountComponents(), CountComponents(unit));
}

TEST_P(UndirectedPropertyTest, SparsifierEstimatesAreUnbiasedOnAverage) {
  const UndirectedGraph g = MakeGraph();
  const int n = g.num_vertices();
  Rng side_rng(std::get<2>(GetParam()) + 3);
  VertexSet side(static_cast<size_t>(n));
  do {
    for (auto& b : side) b = static_cast<uint8_t>(side_rng.Next() & 1);
  } while (!IsProperCutSide(side));
  const double exact = g.CutWeight(side);
  double sum = 0;
  const int builds = 40;
  for (int b = 0; b < builds; ++b) {
    Rng rng(std::get<2>(GetParam()) * 100 + b);
    const ForEachCutSketch sketch(g, 0.4, rng);
    sum += sketch.EstimateCut(side);
  }
  EXPECT_NEAR(sum / builds, exact, 0.15 * exact + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UndirectedPropertyTest,
    ::testing::Values(SizeDensitySeed{10, 0.3, 1}, SizeDensitySeed{16, 0.2, 2},
                      SizeDensitySeed{16, 0.6, 3}, SizeDensitySeed{24, 0.15, 4},
                      SizeDensitySeed{24, 0.5, 5},
                      SizeDensitySeed{32, 0.25, 6}));

using BetaSeed = std::tuple<double, uint64_t>;

class DirectedPropertyTest : public ::testing::TestWithParam<BetaSeed> {
 protected:
  DirectedGraph MakeGraph() {
    const auto& [beta, seed] = GetParam();
    Rng rng(seed);
    return RandomBalancedDigraph(14, 0.4, beta, rng);
  }
};

TEST_P(DirectedPropertyTest, SymmetrizationIdentityOnAllSingletons) {
  const DirectedGraph g = MakeGraph();
  const UndirectedGraph sym = g.Symmetrized();
  for (int v = 0; v < g.num_vertices(); ++v) {
    const VertexSet side = MakeVertexSet(g.num_vertices(), {v});
    EXPECT_NEAR(sym.CutWeight(side),
                g.CutWeight(side) + g.CutWeight(ComplementSet(side)), 1e-9);
  }
}

TEST_P(DirectedPropertyTest, ImbalanceDecompositionRecoversDirectedCuts) {
  const DirectedGraph g = MakeGraph();
  const std::vector<double> imbalance = VertexImbalances(g);
  const UndirectedGraph sym = g.Symmetrized();
  Rng rng(std::get<1>(GetParam()) + 7);
  for (int trial = 0; trial < 15; ++trial) {
    VertexSet side(static_cast<size_t>(g.num_vertices()));
    for (auto& b : side) b = static_cast<uint8_t>(rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    double d = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (side[static_cast<size_t>(v)]) d += imbalance[static_cast<size_t>(v)];
    }
    // w(S, V∖S) = (u(S) + d(S))/2 — the decomposition all directed
    // sketches rely on.
    EXPECT_NEAR((sym.CutWeight(side) + d) / 2, g.CutWeight(side), 1e-9);
  }
}

TEST_P(DirectedPropertyTest, BalanceWithinCertificate) {
  const DirectedGraph g = MakeGraph();
  const auto certificate = PerEdgeBalanceCertificate(g);
  ASSERT_TRUE(certificate.has_value());
  EXPECT_LE(MeasureBalanceExact(g), *certificate + 1e-9);
}

TEST_P(DirectedPropertyTest, DirectedSamplerUnbiasedOnSingletons) {
  const DirectedGraph g = MakeGraph();
  const auto& [beta, seed] = GetParam();
  const VertexSet side = MakeVertexSet(g.num_vertices(), {0});
  const double exact = g.CutWeight(side);
  double sum = 0;
  const int builds = 30;
  for (int b = 0; b < builds; ++b) {
    Rng rng(seed * 1000 + b);
    const DirectedImportanceSamplerSketch sketch(g, 0.5, beta, rng, 0.5);
    sum += sketch.EstimateCut(side);
  }
  EXPECT_NEAR(sum / builds, exact, 0.2 * exact + 0.5);
}

TEST_P(DirectedPropertyTest, EulerianDecompositionOfSymmetrizedPairs) {
  // Turning the graph into an Eulerian one by mirroring every edge makes
  // the cycle decomposition exact and the sparsifier's imbalance zero.
  const DirectedGraph g = MakeGraph();
  DirectedGraph mirrored(g.num_vertices());
  for (const Edge& e : g.edges()) {
    mirrored.AddEdge(e.src, e.dst, e.weight);
    mirrored.AddEdge(e.dst, e.src, e.weight);
  }
  const auto cycles = DecomposeIntoCycles(mirrored);
  const DirectedGraph rebuilt =
      GraphFromCycles(mirrored.num_vertices(), cycles);
  for (int v = 0; v < mirrored.num_vertices(); ++v) {
    EXPECT_NEAR(rebuilt.OutDegree(v), mirrored.OutDegree(v), 1e-6);
  }
  Rng rng(std::get<1>(GetParam()) + 77);
  const DirectedGraph sparse = SparsifyEulerian(mirrored, 0.5, rng);
  for (double imbalance : VertexImbalances(sparse)) {
    EXPECT_NEAR(imbalance, 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, DirectedPropertyTest,
                         ::testing::Values(BetaSeed{1.0, 11},
                                           BetaSeed{2.0, 12},
                                           BetaSeed{4.0, 13},
                                           BetaSeed{8.0, 14}));

// Differential sweep across the backend registry: 200 random balanced
// digraphs (8 blocks of 25, parameterized so ctest can run blocks in
// parallel), each with its own size, density, and β. Every registered
// backend must estimate every probe cut — all singletons, random proper
// sides, and the side of the exact Dinic-based directed global min cut —
// within the error bound it advertises for its options. For-each backends
// get the median boost their per-cut contract requires before any
// simultaneous-cut claim makes sense.
class BackendDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendDifferentialTest, AllBackendsWithinDeclaredEpsilon) {
  constexpr int kGraphsPerBlock = 25;
  const int block = GetParam();
  for (int index = 0; index < kGraphsPerBlock; ++index) {
    const uint64_t graph_id =
        static_cast<uint64_t>(block * kGraphsPerBlock + index);
    Rng rng(SubtaskSeed(991, graph_id));
    const int n = 8 + static_cast<int>(rng.UniformInt(7));
    const double density = 0.3 + 0.4 * rng.UniformDouble();
    const double beta = static_cast<double>(uint64_t{1} << rng.UniformInt(4));
    const DirectedGraph graph = RandomBalancedDigraph(n, density, beta, rng);

    // Probe sides. The generator's bidirected Hamiltonian backbone makes
    // the graph strongly connected, so every proper cut is positive and
    // relative error against the exact value is well defined.
    std::vector<VertexSet> sides;
    for (int v = 0; v < n; ++v) {
      sides.push_back(MakeVertexSet(n, {v}));
    }
    for (int probe = 0; probe < 4; ++probe) {
      VertexSet side(static_cast<size_t>(n), 0);
      for (auto& b : side) b = static_cast<uint8_t>(rng.Next() & 1);
      if (!IsProperCutSide(side)) side[0] ^= 1;
      sides.push_back(std::move(side));
    }
    sides.push_back(DirectedGlobalMinCut(graph).side);

    for (const BackendInfo& backend : RegisteredBackends()) {
      BackendOptions options;
      options.epsilon = 0.3;
      options.beta = beta;
      options.seed = SubtaskSeed(graph_id, 1);
      options.median_boost = 5;
      const auto sketch = BuildBackendSketch(backend.name, graph, options);
      ASSERT_TRUE(sketch.ok()) << sketch.status().message();
      const double bound = BackendAdvertisedError(backend.name, options);
      for (const VertexSet& side : sides) {
        const double exact = graph.CutWeight(side);
        ASSERT_GT(exact, 0);
        const double estimate = (*sketch)->EstimateCut(side);
        EXPECT_LE(std::abs(estimate - exact), bound * exact + 1e-6)
            << backend.name << " on graph " << graph_id << " (n=" << n
            << " beta=" << beta << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoHundredDigraphs, BackendDifferentialTest,
                         ::testing::Range(0, 8));

// Serialized-size accounting (DESIGN.md §8): serializing a sketch records
// exactly one `serialization.payload_bits.<kind>` sample for the sketch's
// own stream kind, and its value equals the envelope's payload bit-count
// field as read back from the wire. Checked for all four sketch kinds.
// (Directed sketches nest an enveloped graph inside their payload, so the
// metrics diff also shows the inner graph's kind — the assertions key on
// the outer kind only.) Skipped when metrics are compiled out: the counts
// do not exist in that configuration.
class SerializationAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !DCS_METRICS_ENABLED
    GTEST_SKIP() << "library compiled with DCS_ENABLE_METRICS=OFF";
#endif
  }

  // Serializes via `serialize` (the object must already be built: sketch
  // constructors serialize once internally to precompute SizeInBits, which
  // would double the sample count inside the diff window), then checks the
  // metric sample against the payload bit-count field decoded from the
  // stream itself. The diff's min/max are defined to come from the later
  // full snapshot, so only count and sum are asserted here.
  void ExpectPayloadBitsMatchEnvelope(
      StreamKind kind, const std::function<void(BitWriter&)>& serialize) {
    const std::string metric =
        std::string("serialization.payload_bits.") + StreamKindName(kind);
    const metrics::MetricsSnapshot before =
        metrics::Registry::Get().Snapshot();
    BitWriter writer;
    serialize(writer);
    const metrics::MetricsSnapshot diff =
        metrics::Registry::Get().Snapshot().DiffSince(before);
    const auto it = diff.distributions.find(metric);
    ASSERT_NE(it, diff.distributions.end()) << metric;
    EXPECT_EQ(it->second.count, 1) << metric;
    BitReader reader(writer.bytes());
    const StatusOr<EnvelopePayload> payload =
        ReadEnvelopePayload(kind, reader);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    EXPECT_EQ(it->second.sum, payload->bit_count) << metric;
  }
};

TEST_F(SerializationAccountingTest, PayloadBitsMatchForAllFourSketchKinds) {
  Rng rng(321);
  const UndirectedGraph ugraph = RandomUndirectedGraph(20, 0.3, 0.5, 2.0,
                                                       true, rng);
  const DirectedGraph dgraph = RandomBalancedDigraph(16, 0.4, 2.0, rng);
  const ForEachCutSketch foreach_sketch(ugraph, 0.4, rng);
  const BenczurKargerSparsifier forall_sparsifier(ugraph, 0.4, rng);
  const DirectedForEachSketch directed_foreach(dgraph, 0.4, 2.0, rng);
  const DirectedForAllSketch directed_forall(dgraph, 0.4, 2.0, rng);

  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kForEachSketch,
      [&](BitWriter& writer) { foreach_sketch.Serialize(writer); });
  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kForAllSparsifier,
      [&](BitWriter& writer) { forall_sparsifier.Serialize(writer); });
  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kDirectedForEachSketch,
      [&](BitWriter& writer) { directed_foreach.Serialize(writer); });
  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kDirectedForAllSketch,
      [&](BitWriter& writer) { directed_forall.Serialize(writer); });
}

TEST_F(SerializationAccountingTest, GraphEnvelopesAccountedToo) {
  // The plain graph serializers carry the same invariant, with no nesting.
  Rng rng(654);
  const UndirectedGraph ugraph = RandomUndirectedGraph(12, 0.4, 0.5, 2.0,
                                                       true, rng);
  const DirectedGraph dgraph = RandomBalancedDigraph(10, 0.5, 1.0, rng);
  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kUndirectedGraph, [&](BitWriter& writer) {
        SerializeUndirectedGraph(ugraph, writer);
      });
  ExpectPayloadBitsMatchEnvelope(
      StreamKind::kDirectedGraph, [&](BitWriter& writer) {
        SerializeDirectedGraph(dgraph, writer);
      });
}

}  // namespace
}  // namespace dcs
