#include "util/stats.h"

#include <cmath>

#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-3}), -3.0);
}

TEST(StatsTest, StdDevBasic) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(StatsTest, MedianEmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_FALSE(std::isnan(Median({})));
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 20.0);
}

TEST(StatsTest, PercentileEmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_FALSE(std::isnan(Percentile({}, 100)));
}

TEST(StatsTest, PercentileSingleElementEveryP) {
  for (double p : {0.0, 37.5, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({42.0}, p), 42.0) << "p=" << p;
  }
}

TEST(StatsTest, PercentileClampsOutOfRangeP) {
  const std::vector<double> values = {10, 20, 30};
  EXPECT_DOUBLE_EQ(Percentile(values, -5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 150), 30.0);
  // The exact p=100 rank lands on the last element without interpolating
  // past the end, even when fp rounding makes rank fractionally high.
  EXPECT_DOUBLE_EQ(Percentile(values, std::nextafter(100.0, 200.0)), 30.0);
}

TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  const std::vector<double> values = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(values, 75), 7.5);
}

TEST(StatsTest, FitLineExact) {
  const LineFit fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(StatsTest, FitLineNoisy) {
  const LineFit fit =
      FitLine({0, 1, 2, 3, 4, 5}, {0.1, 0.9, 2.2, 2.8, 4.1, 5.0});
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(StatsTest, FitLineConstantX) {
  const LineFit fit = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(StatsTest, FitLogLogRecoversExponent) {
  // y = 3·x^2.5
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3 * std::pow(x, 2.5));
  }
  const LineFit fit = FitLogLog(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(StatsDeathTest, FitLogLogRejectsNonPositive) {
  EXPECT_DEATH(FitLogLog({1, 0}, {1, 1}), "CHECK");
}

}  // namespace
}  // namespace dcs
