#include "mincut/nagamochi_ibaraki.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/dinic.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(NiStrengthTest, SingleEdgeStrengthIsItsWeight) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 2.5);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  ASSERT_EQ(strengths.size(), 1u);
  EXPECT_DOUBLE_EQ(strengths[0], 2.5);
}

TEST(NiStrengthTest, TriangleUnitWeights) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(0, 2, 1.0);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  // Every edge lies on a triangle: connectivity between endpoints is 2.
  for (double s : strengths) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 2.0);
  }
}

TEST(NiStrengthTest, StrengthAtLeastWeight) {
  Rng rng(41);
  const UndirectedGraph g =
      RandomUndirectedGraph(20, 0.3, 0.5, 2.0, true, rng);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  for (size_t i = 0; i < strengths.size(); ++i) {
    EXPECT_GE(strengths[i], g.edges()[i].weight - 1e-9);
  }
}

TEST(NiStrengthTest, StrengthNeverExceedsEndpointMaxFlow) {
  Rng rng(42);
  const UndirectedGraph g =
      RandomUndirectedGraph(14, 0.35, 1.0, 2.0, true, rng);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    const double connectivity =
        MaxFlowUndirected(g, e.src, e.dst).flow_value;
    // Geometric peeling (default granularity 1/8) may sit up to 12.5%
    // above the exact decomposition, which itself respects the max-flow
    // bound exactly.
    EXPECT_LE(strengths[i], 1.125 * connectivity + 1e-6)
        << "edge " << e.src << "-" << e.dst;
    const std::vector<double> exact =
        NagamochiIbarakiStrengths(g, /*granularity=*/0);
    EXPECT_LE(exact[i], connectivity + 1e-6);
    EXPECT_LE(strengths[i], 1.125 * exact[i] + 1e-6);
  }
}

TEST(NiStrengthTest, CompleteGraphForestLevels) {
  const UndirectedGraph g = CompleteGraph(8, 1.0);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  // The peeling decomposition stratifies K_8's edges across forest levels:
  // the deepest level is ≥ n/2 (K_n decomposes into ~n/2 spanning trees)
  // and no level exceeds the connectivity (7).
  double max_strength = 0;
  for (double s : strengths) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 7.0);
    max_strength = std::max(max_strength, s);
  }
  EXPECT_GE(max_strength, 4.0);
  // The inverse-strength sum that controls sparsifier size is O(n log n).
  double inverse_sum = 0;
  for (double s : strengths) inverse_sum += 1.0 / s;
  EXPECT_LE(inverse_sum, 8.0 * std::log2(8.0) + 8);
}

TEST(NiStrengthTest, BridgeHasLowStrength) {
  const UndirectedGraph g = DumbbellGraph(6, 1);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  // The single bridge has endpoint connectivity exactly 1.
  double bridge_strength = -1;
  double max_clique_strength = 0;
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    const bool is_bridge = (e.src < 6) != (e.dst < 6);
    if (is_bridge) {
      bridge_strength = strengths[i];
    } else {
      max_clique_strength = std::max(max_clique_strength, strengths[i]);
    }
  }
  EXPECT_DOUBLE_EQ(bridge_strength, 1.0);
  EXPECT_GT(max_clique_strength, bridge_strength);
}

TEST(NiStrengthTest, ZeroWeightEdgesGetZeroStrength) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 0.0);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(g);
  EXPECT_DOUBLE_EQ(strengths[1], 0.0);
}

TEST(SparseCertificateTest, SizeBound) {
  const UndirectedGraph g = CompleteGraph(10, 1.0);
  for (int k : {1, 2, 3}) {
    const UndirectedGraph cert = SparseCertificate(g, k);
    EXPECT_LE(cert.num_edges(), static_cast<int64_t>(k) * 9);
  }
}

TEST(SparseCertificateTest, FirstForestSpans) {
  Rng rng(43);
  const UndirectedGraph g =
      RandomUndirectedGraph(15, 0.4, 1.0, 1.0, true, rng);
  const UndirectedGraph cert = SparseCertificate(g, 1);
  EXPECT_EQ(cert.num_edges(), 14);  // a spanning tree
}

TEST(SparseCertificateTest, LargeKKeepsEverything) {
  const UndirectedGraph g = CycleGraph(8, 1.0);
  const UndirectedGraph cert = SparseCertificate(g, 10);
  EXPECT_EQ(cert.num_edges(), g.num_edges());
}

TEST(SparseCertificateTest, PreservesMinCutUpToK) {
  // Min cut 2 (cycle); a 3-forest certificate must preserve it exactly.
  const UndirectedGraph g = CycleGraph(10, 1.0);
  const UndirectedGraph cert = SparseCertificate(g, 3);
  EXPECT_DOUBLE_EQ(StoerWagnerMinCut(cert).value,
                   StoerWagnerMinCut(g).value);
}

}  // namespace
}  // namespace dcs
