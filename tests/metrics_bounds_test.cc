// The paper's resource bounds, asserted on runtime metrics.
//
// Every bound the paper states is a count of some resource; with the
// metrics registry those counts are observable, so this suite turns two of
// them into executable assertions:
//
//  * Theorem 1.1 / Lemma 3.2 — the for-each decoder recovers each sign bit
//    from EXACTLY four cut queries (the inclusion–exclusion probe
//    (A,B), (Ā,B), (A,B̄), (Ā,B̄)), regardless of the oracle behind them.
//  * Theorem 5.7 — the modified-search min-cut estimator spends
//    Õ(m/(ε²k)) local queries. The Õ's polylog is pinned down empirically
//    as log₂²(n) with constant 1 (measured constant ≈ 0.4 across the grid
//    below, so the budget has a >2× safety margin while keeping the
//    m/(ε²k) shape: doubling m at fixed n, ε, k must not double the
//    slack).
//
// All assertions diff registry snapshots, so the suite is robust to other
// tests (or static initializers) touching the registry. When the library
// is compiled with DCS_ENABLE_METRICS=OFF the counts do not exist; every
// test skips.

#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "localquery/mincut_estimator.h"
#include "lowerbound/cut_oracle.h"
#include "lowerbound/foreach_encoding.h"
#include "serve/cut_query_service.h"
#include "serve/decoder_batch.h"
#include "util/metrics.h"
#include "util/random.h"

namespace dcs {
namespace {

using metrics::MetricsSnapshot;
using metrics::Registry;

int64_t CounterDiff(const MetricsSnapshot& diff, const std::string& name) {
  const auto it = diff.counters.find(name);
  return it == diff.counters.end() ? 0 : it->second;
}

#if DCS_METRICS_ENABLED
constexpr bool kMetricsEnabled = true;
#else
constexpr bool kMetricsEnabled = false;
#endif

class MetricsBoundsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsEnabled) {
      GTEST_SKIP() << "library compiled with DCS_ENABLE_METRICS=OFF";
    }
  }
};

// Decodes `probes` bits and returns the metrics diff across the decode.
MetricsSnapshot DecodeBitsAndDiff(const ForEachLowerBoundParams& params,
                                  const CutOracle& oracle, int probes,
                                  Rng& rng, const std::vector<int8_t>& s,
                                  int* correct) {
  const ForEachDecoder decoder(params);
  const MetricsSnapshot before = Registry::Get().Snapshot();
  *correct = 0;
  for (int probe = 0; probe < probes; ++probe) {
    const int64_t q = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(params.total_bits())));
    if (decoder.DecodeBit(q, oracle) == s[static_cast<size_t>(q)]) {
      ++*correct;
    }
  }
  return Registry::Get().Snapshot().DiffSince(before);
}

TEST_F(MetricsBoundsTest, ForEachDecoderUsesExactlyFourQueriesPerBit) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 3;
  Rng rng(2024);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  constexpr int kProbes = 32;
  int correct = 0;
  const MetricsSnapshot diff =
      DecodeBitsAndDiff(params, oracle, kProbes, rng, s, &correct);
  // Lemma 3.2: four session queries per decoded bit — not 5, not 4·m.
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.query"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.opened"), kProbes);
  EXPECT_EQ(CounterDiff(diff, "foreach.bit.decoded"), kProbes);
  // The decoder goes through sessions only; one-shot queries stay at zero.
  EXPECT_EQ(CounterDiff(diff, "cutoracle.query.served"), 0);
  // Exact oracle at this ε: every probe decodes correctly.
  EXPECT_EQ(correct, kProbes);
}

TEST_F(MetricsBoundsTest, FourQueryBoundHoldsForNoisyAndRescanOracles) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(77);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  constexpr int kProbes = 16;

  // Worst-case (1±ε') noise: query count is oblivious to oracle accuracy.
  Rng noise_rng(5);
  const CutOracle noisy =
      MaximalNoiseCutOracle(encoding.graph, 0.01, noise_rng);
  int correct = 0;
  MetricsSnapshot diff =
      DecodeBitsAndDiff(params, noisy, kProbes, rng, s, &correct);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.query"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.incremental"), kProbes);

  // A bare lambda oracle has no incremental sessions; the fallback rescan
  // session must still serve exactly the same four queries per bit.
  const DirectedGraph& graph = encoding.graph;
  graph.BuildAdjacency();
  const CutOracle rescan =
      [&graph](const VertexSet& side) { return graph.CutWeight(side); };
  diff = DecodeBitsAndDiff(params, rescan, kProbes, rng, s, &correct);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.query"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.session.rescan"), kProbes);
  EXPECT_EQ(CounterDiff(diff, "cutoracle.query.served"), 0);
}

TEST_F(MetricsBoundsTest, ServedDecodeKeepsFourLogicalQueriesPerBit) {
  // Lemma 3.2 through the serving layer: a batched decode still spends
  // exactly four *logical* queries per bit, and a warm cache changes only
  // how many of them reach the backend — never the logical count and never
  // the decoded bits.
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(4242);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);

  CutQueryService service;
  const auto object = service.RegisterGraph(encoding.graph);

  // Distinct bit positions, so no two probes share a cut side within a
  // pass and the cold pass is all misses.
  constexpr int kProbes = 32;
  std::vector<int64_t> qs;
  for (int64_t q = 0; q < kProbes; ++q) qs.push_back(q);

  const MetricsSnapshot before_cold = Registry::Get().Snapshot();
  const std::vector<int8_t> cold = DecodeForEachBits(decoder, qs, service,
                                                     object);
  const MetricsSnapshot cold_diff =
      Registry::Get().Snapshot().DiffSince(before_cold);
  EXPECT_EQ(CounterDiff(cold_diff, "serve.query.logical"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(cold_diff, "serve.cache.misses"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(cold_diff, "serve.cache.hits"), 0);
  EXPECT_EQ(CounterDiff(cold_diff, "foreach.bit.decoded"), kProbes);

  const MetricsSnapshot before_warm = Registry::Get().Snapshot();
  const std::vector<int8_t> warm = DecodeForEachBits(decoder, qs, service,
                                                     object);
  const MetricsSnapshot warm_diff =
      Registry::Get().Snapshot().DiffSince(before_warm);
  EXPECT_EQ(CounterDiff(warm_diff, "serve.query.logical"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(warm_diff, "serve.cache.hits"), 4 * kProbes);
  EXPECT_EQ(CounterDiff(warm_diff, "serve.cache.misses"), 0);

  EXPECT_EQ(cold, warm);
  for (int i = 0; i < kProbes; ++i) {
    EXPECT_EQ(cold[static_cast<size_t>(i)], s[static_cast<size_t>(i)])
        << "bit " << i;
  }
}

TEST_F(MetricsBoundsTest, MinCutEstimatorStaysWithinTheorem57Budget) {
  // Dumbbell instances: two K_cs cliques joined by k bridges, so the min
  // cut is exactly k and m ≈ cs². The estimator's query count must scale
  // as Õ(m/(ε²k)) (Theorem 5.7, modified constant-accuracy search).
  for (const int clique_size : {16, 24, 40}) {
    for (const int bridges : {2, 4, 8}) {
      for (const double epsilon : {0.5, 0.25}) {
        const UndirectedGraph graph = DumbbellGraph(clique_size, bridges);
        const double m = static_cast<double>(graph.num_edges());
        const double n = static_cast<double>(graph.num_vertices());
        Rng rng(1234 + static_cast<uint64_t>(clique_size + bridges));
        const MetricsSnapshot before = Registry::Get().Snapshot();
        const LocalQueryMinCutResult result = EstimateMinCutLocalQueries(
            graph, epsilon, SearchMode::kModifiedConstantSearch, rng);
        const MetricsSnapshot diff =
            Registry::Get().Snapshot().DiffSince(before);

        // The estimate itself is (1±ε)-accurate on the known min cut k.
        EXPECT_GE(result.estimate, (1 - epsilon) * bridges);
        EXPECT_LE(result.estimate, (1 + epsilon) * bridges);

        // Õ(m/(ε²k)) with the polylog pinned as log₂²(n), constant 1
        // (header comment; measured constant ≈ 0.4).
        const double log_n = std::log2(n);
        const double budget =
            m * log_n * log_n / (epsilon * epsilon * bridges);
        EXPECT_LE(static_cast<double>(result.counts.total()), budget)
            << "clique_size=" << clique_size << " bridges=" << bridges
            << " epsilon=" << epsilon << " m=" << m;

        // The registry counted exactly what the oracle counted.
        EXPECT_EQ(CounterDiff(diff, "localquery.degree.issued"),
                  result.counts.degree);
        EXPECT_EQ(CounterDiff(diff, "localquery.neighbor.issued"),
                  result.counts.neighbor);
        EXPECT_EQ(CounterDiff(diff, "localquery.adjacency.issued"),
                  result.counts.adjacency);
      }
    }
  }
}

TEST_F(MetricsBoundsTest, QueryBudgetScalesDownWithMinCut) {
  // The 1/k dependence of Theorem 5.7, observed directly: at fixed n and
  // ε, quadrupling the min cut must not increase the query count.
  const double epsilon = 0.5;
  int64_t queries_small_cut = 0;
  int64_t queries_large_cut = 0;
  for (const int bridges : {2, 8}) {
    const UndirectedGraph graph = DumbbellGraph(32, bridges);
    Rng rng(99);
    const LocalQueryMinCutResult result = EstimateMinCutLocalQueries(
        graph, epsilon, SearchMode::kModifiedConstantSearch, rng);
    (bridges == 2 ? queries_small_cut : queries_large_cut) =
        result.counts.total();
  }
  EXPECT_LE(queries_large_cut, queries_small_cut);
}

}  // namespace
}  // namespace dcs
