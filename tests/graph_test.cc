#include <cmath>

#include "graph/connectivity.h"
#include "graph/digraph.h"
#include "graph/types.h"
#include "graph/ugraph.h"
#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(VertexSetTest, MakeAndComplement) {
  const VertexSet s = MakeVertexSet(5, {1, 3});
  EXPECT_EQ(SetSize(s), 2);
  EXPECT_TRUE(IsProperCutSide(s));
  const VertexSet c = ComplementSet(s);
  EXPECT_EQ(SetSize(c), 3);
  EXPECT_TRUE(c[0] && !c[1] && c[2] && !c[3] && c[4]);
}

TEST(VertexSetTest, ProperCutSideRejectsEmptyAndFull) {
  EXPECT_FALSE(IsProperCutSide(MakeVertexSet(3, {})));
  EXPECT_FALSE(IsProperCutSide(MakeVertexSet(3, {0, 1, 2})));
  EXPECT_TRUE(IsProperCutSide(MakeVertexSet(3, {2})));
}

TEST(DirectedGraphTest, BasicAccessors) {
  DirectedGraph g(4);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 3.0);
  g.AddEdge(2, 0, 1.5);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 6.5);
  EXPECT_DOUBLE_EQ(g.OutDegree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.InDegree(0), 1.5);
  EXPECT_DOUBLE_EQ(g.OutDegree(3), 0.0);
}

TEST(DirectedGraphTest, CutWeightIsDirectional) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(1, 0, 2.0);
  g.AddEdge(1, 2, 1.0);
  const VertexSet s = MakeVertexSet(3, {0});
  EXPECT_DOUBLE_EQ(g.CutWeight(s), 5.0);
  EXPECT_DOUBLE_EQ(g.CutWeight(ComplementSet(s)), 2.0);
}

TEST(DirectedGraphTest, CrossWeight) {
  DirectedGraph g(4);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(0, 3, 2.0);
  g.AddEdge(2, 0, 4.0);
  const VertexSet from = MakeVertexSet(4, {0, 1});
  const VertexSet to = MakeVertexSet(4, {2, 3});
  EXPECT_DOUBLE_EQ(g.CrossWeight(from, to), 3.0);
  EXPECT_DOUBLE_EQ(g.CrossWeight(to, from), 4.0);
}

TEST(DirectedGraphTest, ReversedFlipsEveryEdge) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  const DirectedGraph r = g.Reversed();
  const VertexSet s = MakeVertexSet(3, {0});
  EXPECT_DOUBLE_EQ(r.CutWeight(s), 0.0);
  EXPECT_DOUBLE_EQ(r.CutWeight(ComplementSet(s)), 1.0);
}

TEST(DirectedGraphTest, SymmetrizedCoalescesPairs) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 0, 3.0);
  g.AddEdge(1, 2, 1.0);
  const UndirectedGraph sym = g.Symmetrized();
  EXPECT_EQ(sym.num_edges(), 2);
  const VertexSet s = MakeVertexSet(3, {0});
  EXPECT_DOUBLE_EQ(sym.CutWeight(s), 5.0);
  // Symmetrization cut = forward + backward directed cuts, for every cut.
  EXPECT_DOUBLE_EQ(sym.CutWeight(s),
                   g.CutWeight(s) + g.CutWeight(ComplementSet(s)));
}

TEST(DirectedGraphTest, MergeFromAddsEdges) {
  DirectedGraph a(3);
  a.AddEdge(0, 1, 1.0);
  DirectedGraph b(3);
  b.AddEdge(1, 2, 2.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.num_edges(), 2);
  EXPECT_DOUBLE_EQ(a.TotalWeight(), 3.0);
}

TEST(DirectedGraphTest, AdjacencyListsTrackEdges) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(1, 0, 1.0);
  EXPECT_EQ(g.OutEdgeIds(0).size(), 2u);
  EXPECT_EQ(g.InEdgeIds(0).size(), 1u);
  // Adjacency stays correct after another AddEdge invalidates the cache.
  g.AddEdge(2, 0, 1.0);
  EXPECT_EQ(g.InEdgeIds(0).size(), 2u);
}

TEST(DirectedGraphDeathTest, RejectsSelfLoopsAndBadVertices) {
  DirectedGraph g(2);
  EXPECT_DEATH(g.AddEdge(0, 0, 1.0), "CHECK");
  EXPECT_DEATH(g.AddEdge(0, 2, 1.0), "CHECK");
  EXPECT_DEATH(g.AddEdge(0, 1, -1.0), "CHECK");
}

TEST(UndirectedGraphTest, BasicAccessors) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(3, 1, 4.0);  // normalized to (1, 3)
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 6.0);
  EXPECT_DOUBLE_EQ(g.Degree(1), 6.0);
  EXPECT_DOUBLE_EQ(g.Degree(2), 0.0);
  EXPECT_EQ(g.edges()[1].src, 1);
  EXPECT_EQ(g.edges()[1].dst, 3);
}

TEST(UndirectedGraphTest, CutWeightSymmetricUnderComplement) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 3.0);
  g.AddEdge(0, 3, 4.0);
  const VertexSet s = MakeVertexSet(4, {0, 2});
  EXPECT_DOUBLE_EQ(g.CutWeight(s), 10.0);
  EXPECT_DOUBLE_EQ(g.CutWeight(ComplementSet(s)), g.CutWeight(s));
}

TEST(UndirectedGraphTest, DegreeSumIsTwiceTotalWeight) {
  UndirectedGraph g(5);
  g.AddEdge(0, 1, 1.5);
  g.AddEdge(2, 3, 2.5);
  g.AddEdge(0, 4, 3.0);
  double degree_sum = 0;
  for (int v = 0; v < 5; ++v) degree_sum += g.Degree(v);
  EXPECT_DOUBLE_EQ(degree_sum, 2 * g.TotalWeight());
}

TEST(UndirectedGraphTest, AsDirectedEdgesDoublesEdges) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  const std::vector<Edge> directed = g.AsDirectedEdges();
  EXPECT_EQ(directed.size(), 4u);
}

TEST(UndirectedGraphTest, ParallelEdgesAccumulate) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.CutWeight(MakeVertexSet(2, {0})), 3.0);
}

TEST(ConnectivityTest, StronglyConnectedCycle) {
  DirectedGraph g(4);
  for (int v = 0; v < 4; ++v) g.AddEdge(v, (v + 1) % 4, 1.0);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(ConnectivityTest, OneWayPathIsNotStronglyConnected) {
  DirectedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  EXPECT_FALSE(IsStronglyConnected(g));
}

TEST(ConnectivityTest, ZeroWeightEdgesDoNotConnect) {
  DirectedGraph g(2);
  g.AddEdge(0, 1, 0.0);
  g.AddEdge(1, 0, 1.0);
  EXPECT_FALSE(IsStronglyConnected(g));
}

TEST(ConnectivityTest, ComponentsAndCounts) {
  UndirectedGraph g(6);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  g.AddEdge(3, 4, 1.0);
  const std::vector<int> comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_EQ(CountComponents(g), 3);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ConnectivityTest, SingleVertexIsConnected) {
  UndirectedGraph g(1);
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace dcs
