// Revolving-door enumeration: starting from {0..t−1} and applying the
// emitted swaps must visit every t-subset of {0..n−1} exactly once, one
// single-element swap at a time.

#include "util/combinations.h"

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace dcs {
namespace {

int64_t Binomial(int n, int t) {
  int64_t result = 1;
  for (int i = 1; i <= t; ++i) result = result * (n - i + 1) / i;
  return result;
}

// Runs the enumeration and returns every visited subset as a bitmask, in
// visit order; validates each swap as it is applied.
std::vector<uint64_t> CollectSubsets(int n, int t) {
  std::vector<uint8_t> in_subset(static_cast<size_t>(n), 0);
  for (int i = 0; i < t; ++i) in_subset[static_cast<size_t>(i)] = 1;
  auto mask = [&in_subset, n] {
    uint64_t m = 0;
    for (int i = 0; i < n; ++i) {
      if (in_subset[static_cast<size_t>(i)]) m |= uint64_t{1} << i;
    }
    return m;
  };
  std::vector<uint64_t> visited = {mask()};
  VisitRevolvingDoorSwaps(n, t, [&](int out, int in) {
    ASSERT_GE(out, 0);
    ASSERT_LT(out, n);
    ASSERT_GE(in, 0);
    ASSERT_LT(in, n);
    ASSERT_NE(out, in);
    ASSERT_TRUE(in_subset[static_cast<size_t>(out)])
        << "swap removes an element not in the subset";
    ASSERT_FALSE(in_subset[static_cast<size_t>(in)])
        << "swap inserts an element already in the subset";
    in_subset[static_cast<size_t>(out)] = 0;
    in_subset[static_cast<size_t>(in)] = 1;
    visited.push_back(mask());
  });
  return visited;
}

TEST(RevolvingDoorTest, VisitsEverySubsetExactlyOnce) {
  for (int n = 1; n <= 10; ++n) {
    for (int t = 0; t <= n; ++t) {
      const std::vector<uint64_t> visited = CollectSubsets(n, t);
      ASSERT_EQ(static_cast<int64_t>(visited.size()), Binomial(n, t))
          << "n=" << n << " t=" << t;
      std::set<uint64_t> unique(visited.begin(), visited.end());
      EXPECT_EQ(unique.size(), visited.size())
          << "duplicate subset at n=" << n << " t=" << t;
      for (const uint64_t m : visited) {
        EXPECT_EQ(std::popcount(m), t) << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(RevolvingDoorTest, HalfSizeSubsetsOfTwelve) {
  // The decoder's case: k = 12 vertices, half-size subsets.
  const std::vector<uint64_t> visited = CollectSubsets(12, 6);
  EXPECT_EQ(static_cast<int64_t>(visited.size()), Binomial(12, 6));
  const std::set<uint64_t> unique(visited.begin(), visited.end());
  EXPECT_EQ(unique.size(), visited.size());
}

TEST(RevolvingDoorTest, DegenerateSizes) {
  EXPECT_EQ(CollectSubsets(5, 0).size(), 1u);  // only the empty set
  EXPECT_EQ(CollectSubsets(5, 5).size(), 1u);  // only the full set
  EXPECT_EQ(CollectSubsets(1, 1).size(), 1u);
}

TEST(RevolvingDoorUntilTest, CompletesWhenVisitorNeverStops) {
  int swaps = 0;
  const bool completed = VisitRevolvingDoorSwapsUntil(8, 4, [&](int, int) {
    ++swaps;
    return true;
  });
  EXPECT_TRUE(completed);
  EXPECT_EQ(static_cast<int64_t>(swaps) + 1, Binomial(8, 4));
}

TEST(RevolvingDoorUntilTest, StopsExactlyWhereTheVisitorSaysAndUnwinds) {
  for (int stop_after : {0, 1, 5, 17}) {
    int swaps = 0;
    const bool completed =
        VisitRevolvingDoorSwapsUntil(8, 4, [&](int, int) {
          if (swaps >= stop_after) return false;
          ++swaps;
          return true;
        });
    EXPECT_FALSE(completed) << "stop_after=" << stop_after;
    EXPECT_EQ(swaps, stop_after);
  }
}

TEST(RevolvingDoorUntilTest, PrefixMatchesUnconditionalEnumeration) {
  // The Until variant must walk the same Gray-code order as the plain one.
  std::vector<std::pair<int, int>> all;
  VisitRevolvingDoorSwaps(7, 3, [&](int out, int in) {
    all.emplace_back(out, in);
  });
  std::vector<std::pair<int, int>> prefix;
  VisitRevolvingDoorSwapsUntil(7, 3, [&](int out, int in) {
    prefix.emplace_back(out, in);
    return prefix.size() < 10;
  });
  ASSERT_EQ(prefix.size(), 10u);
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], all[i]) << "swap " << i;
  }
}

}  // namespace
}  // namespace dcs
