// Tests for the batched cut-query serving layer (src/serve): cache
// semantics, batch determinism, warm/cold bit-identity, and the batched
// decoder/localquery entry points against their unbatched references.

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "graph/types.h"
#include "gtest/gtest.h"
#include "localquery/mincut_estimator.h"
#include "localquery/oracle.h"
#include "localquery/verify_guess.h"
#include "lowerbound/cut_oracle.h"
#include "lowerbound/foreach_encoding.h"
#include "lowerbound/forall_encoding.h"
#include "serve/cut_query_service.h"
#include "serve/decoder_batch.h"
#include "serve/local_batch.h"
#include "serve/query_cache.h"
#include "sketch/directed_sketches.h"
#include "util/random.h"

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// CutQueryCache
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, LookupAfterInsertHits) {
  CutQueryCache cache(CutQueryCache::Options{});
  const VertexSet side = MakeVertexSet(8, {1, 3, 5});
  const uint64_t h = HashSide(side);
  const PackedSide packed = PackSide(side);

  EXPECT_FALSE(cache.Lookup(0, h, packed).has_value());
  cache.Insert(0, h, packed, 42.5);
  const auto hit = cache.Lookup(0, h, packed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 42.5);
  // Same side, different object: distinct entry.
  EXPECT_FALSE(cache.Lookup(1, h, packed).has_value());
  EXPECT_EQ(cache.size(), 1);
}

TEST(QueryCacheTest, KeysAreByteValueInsensitive) {
  // VertexSet membership is "any nonzero byte": {1, 7, 255} and {1, 1, 1}
  // at the same positions denote the same side and must share a cache key.
  VertexSet a(8, 0), b(8, 0);
  a[2] = 1;
  a[5] = 1;
  b[2] = 7;
  b[5] = 255;
  EXPECT_EQ(HashSide(a), HashSide(b));
  EXPECT_TRUE(PackSide(a) == PackSide(b));

  CutQueryCache cache(CutQueryCache::Options{});
  cache.Insert(3, HashSide(a), PackSide(a), 7.25);
  const auto hit = cache.Lookup(3, HashSide(b), PackSide(b));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 7.25);
}

TEST(QueryCacheTest, SideHashIsIncrementalUnderFlips) {
  // The serving layer maintains side hashes by XORing HashVertex(v) per
  // flip; that only works if HashSide is exactly the XOR over members.
  VertexSet side = MakeVertexSet(16, {0, 4, 9});
  uint64_t h = HashSide(side);
  // Flip 9 out, 11 in.
  h ^= HashVertex(9);
  side[9] = 0;
  h ^= HashVertex(11);
  side[11] = 1;
  EXPECT_EQ(h, HashSide(side));
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  CutQueryCache::Options options;
  options.capacity = 2;
  options.num_stripes = 1;  // one stripe so LRU order is global
  CutQueryCache cache(options);

  const VertexSet s0 = MakeVertexSet(8, {0});
  const VertexSet s1 = MakeVertexSet(8, {1});
  const VertexSet s2 = MakeVertexSet(8, {2});
  cache.Insert(0, HashSide(s0), PackSide(s0), 10);
  cache.Insert(0, HashSide(s1), PackSide(s1), 11);
  // Touch s0 so s1 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(0, HashSide(s0), PackSide(s0)).has_value());
  cache.Insert(0, HashSide(s2), PackSide(s2), 12);

  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.Lookup(0, HashSide(s0), PackSide(s0)).has_value());
  EXPECT_FALSE(cache.Lookup(0, HashSide(s1), PackSide(s1)).has_value());
  EXPECT_TRUE(cache.Lookup(0, HashSide(s2), PackSide(s2)).has_value());
}

TEST(QueryCacheTest, DuplicateInsertRefreshesInsteadOfDoubleStoring) {
  CutQueryCache::Options options;
  options.capacity = 4;
  options.num_stripes = 1;
  CutQueryCache cache(options);
  const VertexSet side = MakeVertexSet(8, {1, 2});
  cache.Insert(0, HashSide(side), PackSide(side), 5.0);
  cache.Insert(0, HashSide(side), PackSide(side), 5.0);
  EXPECT_EQ(cache.size(), 1);
}

// ---------------------------------------------------------------------------
// CutQueryService batches
// ---------------------------------------------------------------------------

std::vector<CutQueryService::Query> MakeBatch(CutQueryService::ObjectId object,
                                              int n, int count, Rng& rng,
                                              int repeat_period = 0) {
  std::vector<CutQueryService::Query> batch;
  std::vector<VertexSet> pool;
  for (int i = 0; i < count; ++i) {
    if (repeat_period > 0 && i >= repeat_period) {
      batch.push_back(
          {object, batch[static_cast<size_t>(i % repeat_period)].side});
      continue;
    }
    VertexSet side(static_cast<size_t>(n), 0);
    do {
      for (auto& bit : side) bit = static_cast<uint8_t>(rng.Next() & 1);
    } while (!IsProperCutSide(side));
    batch.push_back({object, std::move(side)});
  }
  return batch;
}

TEST(CutQueryServiceTest, GraphBatchMatchesDirectCutWeights) {
  Rng rng(7);
  const DirectedGraph graph = RandomBalancedDigraph(24, 0.4, 2.0, rng);
  CutQueryService service;
  const auto object = service.RegisterGraph(graph);
  const auto batch = MakeBatch(object, 24, 40, rng);

  const std::vector<double> answers = service.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), batch.size());
  const CutOracle direct = ExactCutOracle(graph);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(answers[i], direct(batch[i].side)) << "query " << i;
  }
}

TEST(CutQueryServiceTest, WarmBatchBitIdenticalToCold) {
  Rng rng(11);
  const DirectedGraph graph = RandomBalancedDigraph(20, 0.5, 1.0, rng);
  CutQueryService service;
  const auto object = service.RegisterGraph(graph);
  // Heavy repetition: 50 queries cycling through 10 distinct sides.
  const auto batch = MakeBatch(object, 20, 50, rng, /*repeat_period=*/10);

  const std::vector<double> cold = service.AnswerBatch(batch);
  EXPECT_GT(service.cache_size(), 0);
  const std::vector<double> warm = service.AnswerBatch(batch);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], warm[i]) << "query " << i;
  }
}

TEST(CutQueryServiceTest, CacheDisabledStillAnswersCorrectly) {
  Rng rng(13);
  const DirectedGraph graph = RandomBalancedDigraph(16, 0.5, 1.0, rng);
  CutQueryServiceOptions options;
  options.enable_cache = false;
  CutQueryService service(options);
  const auto object = service.RegisterGraph(graph);
  const auto batch = MakeBatch(object, 16, 20, rng, /*repeat_period=*/5);

  const std::vector<double> a = service.AnswerBatch(batch);
  const std::vector<double> b = service.AnswerBatch(batch);
  EXPECT_EQ(service.cache_size(), 0);
  const CutOracle direct = ExactCutOracle(graph);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(a[i], direct(batch[i].side));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CutQueryServiceTest, SketchBatchMatchesDirectEstimates) {
  Rng rng(17);
  const DirectedGraph graph = RandomBalancedDigraph(24, 0.5, 2.0, rng);
  Rng sketch_rng(5);
  const DirectedForEachSketch sketch(graph, 0.5, 2.0, sketch_rng);
  CutQueryService service;
  const auto object = service.RegisterSketch(sketch);
  const auto batch = MakeBatch(object, 24, 20, rng);

  const std::vector<double> answers = service.AnswerBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(answers[i], sketch.EstimateCut(batch[i].side));
  }
}

TEST(CutQueryServiceTest, SeededBatchesDeterministicAcrossThreadCounts) {
  Rng rng(23);
  const DirectedGraph graph = RandomBalancedDigraph(20, 0.5, 1.0, rng);
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& oracle_rng) {
    return NoisyCutOracle(g, 0.2, oracle_rng);
  };

  auto run = [&](int num_threads, int shard_size) {
    CutQueryServiceOptions options;
    options.num_threads = num_threads;
    options.shard_size = shard_size;
    CutQueryService service(options);
    const auto object = service.RegisterSeededOracle(graph, factory, 99);
    Rng batch_rng(31);
    const auto batch = MakeBatch(object, 20, 70, batch_rng);
    return service.AnswerBatch(batch);
  };

  const std::vector<double> serial = run(1, 16);
  const std::vector<double> pooled = run(4, 16);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "query " << i;
  }
  // A different shard size is a different (but still valid) noise
  // partition, so it may differ — only the thread count must not matter.
  const std::vector<double> pooled8 = run(8, 16);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled8[i]) << "query " << i;
  }
}

TEST(CutQueryServiceTest, SeededOraclesAreNeverCached) {
  Rng rng(29);
  const DirectedGraph graph = RandomBalancedDigraph(16, 0.5, 1.0, rng);
  CutQueryService service;
  const auto object = service.RegisterSeededOracle(
      graph,
      [](const DirectedGraph& g, Rng& oracle_rng) {
        return NoisyCutOracle(g, 0.3, oracle_rng);
      },
      7);
  Rng batch_rng(3);
  const auto batch = MakeBatch(object, 16, 10, batch_rng);
  service.AnswerBatch(batch);
  EXPECT_EQ(service.cache_size(), 0);
}

// ---------------------------------------------------------------------------
// Served sessions
// ---------------------------------------------------------------------------

TEST(CutQueryServiceTest, ServedSessionMatchesDirectSession) {
  Rng rng(41);
  const DirectedGraph graph = RandomBalancedDigraph(18, 0.5, 2.0, rng);
  CutQueryService service;
  const auto object = service.RegisterGraph(graph);
  const CutOracle direct = ExactCutOracle(graph);

  const VertexSet start = MakeVertexSet(18, {0, 3, 4, 9, 15});
  const std::vector<VertexId> flips = {1, 9, 2, 1, 16, 0};

  auto served = service.BeginSession(object, start);
  auto reference = direct.BeginSession(start);
  EXPECT_EQ(served->Query(), reference->Query());
  for (const VertexId v : flips) {
    served->Flip(v);
    reference->Flip(v);
    EXPECT_EQ(served->Query(), reference->Query()) << "after flip " << v;
  }

  // A second served session over the same walk answers from the cache —
  // and must stay bit-identical to the direct session.
  auto warm = service.BeginSession(object, start);
  auto reference2 = direct.BeginSession(start);
  EXPECT_EQ(warm->Query(), reference2->Query());
  for (const VertexId v : flips) {
    warm->Flip(v);
    reference2->Flip(v);
    EXPECT_EQ(warm->Query(), reference2->Query()) << "after flip " << v;
  }
}

TEST(CutQueryServiceTest, SessionSkipsUnqueriedFlipRuns) {
  // Multiple flips between queries must collapse correctly (pending-flip
  // replay), including flips that cancel out.
  Rng rng(43);
  const DirectedGraph graph = RandomBalancedDigraph(12, 0.6, 1.0, rng);
  CutQueryService service;
  const auto object = service.RegisterGraph(graph);
  const CutOracle direct = ExactCutOracle(graph);

  const VertexSet start = MakeVertexSet(12, {2, 5, 7});
  auto served = service.BeginSession(object, start);
  auto reference = direct.BeginSession(start);
  for (const VertexId v : {1, 4, 4, 8}) {
    served->Flip(v);
    reference->Flip(v);
  }
  EXPECT_EQ(served->Query(), reference->Query());
}

// ---------------------------------------------------------------------------
// Batched decoders
// ---------------------------------------------------------------------------

TEST(DecoderBatchTest, DecodeForEachBitsMatchesPerBitDecode) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 4;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  const ForEachEncoder encoder(params);
  const ForEachDecoder decoder(params);

  Rng rng(51);
  std::vector<int8_t> s(static_cast<size_t>(params.total_bits()));
  for (auto& bit : s) bit = (rng.Next() & 1) ? 1 : -1;
  const auto encoding = encoder.Encode(s);

  CutQueryService service;
  const auto object = service.RegisterGraph(encoding.graph);
  const CutOracle direct = ExactCutOracle(encoding.graph);

  std::vector<int64_t> qs;
  for (int64_t q = 0; q < params.total_bits(); ++q) qs.push_back(q);
  const std::vector<int8_t> batched =
      DecodeForEachBits(decoder, qs, service, object);
  ASSERT_EQ(batched.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batched[i], decoder.DecodeBit(qs[i], direct)) << "bit " << i;
  }
  // Warm pass: identical decodes from the cache.
  const std::vector<int8_t> warm =
      DecodeForEachBits(decoder, qs, service, object);
  EXPECT_EQ(batched, warm);
}

TEST(DecoderBatchTest, ForAllServicePathMatchesOraclePath) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 4;
  params.beta = 1;
  params.num_layers = 2;
  const ForAllEncoder encoder(params);
  const ForAllDecoder decoder(params);

  Rng rng(53);
  std::vector<std::vector<uint8_t>> strings;
  for (int64_t i = 0; i < params.total_strings(); ++i) {
    std::vector<uint8_t> s(static_cast<size_t>(params.inv_epsilon_sq), 0);
    const auto picks = rng.RandomSubset(params.inv_epsilon_sq,
                                        params.inv_epsilon_sq / 2);
    for (const int v : picks) s[static_cast<size_t>(v)] = 1;
    strings.push_back(std::move(s));
  }
  const DirectedGraph graph = encoder.Encode(strings);
  const CutOracle oracle = ExactCutOracle(graph);

  CutQueryService service;
  const auto object = service.RegisterGraph(graph);

  std::vector<uint8_t> t(static_cast<size_t>(params.inv_epsilon_sq), 0);
  t[0] = 1;
  t[1] = 1;
  for (const auto mode : {ForAllDecoder::SubsetSelection::kEnumerate,
                          ForAllDecoder::SubsetSelection::kGreedy}) {
    for (int64_t q = 0; q < params.total_strings(); ++q) {
      EXPECT_EQ(
          SelectForAllBestSubset(decoder, q, t, service, object, mode),
          decoder.SelectBestSubset(q, t, oracle, mode));
      EXPECT_EQ(DecideForAllFar(decoder, q, t, service, object, mode),
                decoder.DecideFar(q, t, oracle, mode));
    }
  }
  // The enumeration revisits sides across strings/modes; the cache should
  // have picked some of that up.
  EXPECT_GT(service.cache_size(), 0);
}

// ---------------------------------------------------------------------------
// Batched local queries
// ---------------------------------------------------------------------------

TEST(LocalBatchTest, BatchedVerifyGuessBitIdenticalToUnbatched) {
  Rng graph_rng(61);
  const UndirectedGraph graph =
      RandomUndirectedGraph(40, 0.3, 1.0, 1.0, true, graph_rng);
  for (const double guess : {1.0, 2.0, 8.0}) {
    GraphOracle oracle_a(graph);
    GraphOracle oracle_b(graph);
    Rng rng_a(77);
    Rng rng_b(77);
    const auto unbatched = VerifyGuess(oracle_a, guess, 0.5, rng_a);
    const auto batched = BatchedVerifyGuess(oracle_b, guess, 0.5, rng_b);
    ASSERT_TRUE(unbatched.ok());
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->accepted, unbatched->accepted) << "t=" << guess;
    EXPECT_EQ(batched->estimate, unbatched->estimate) << "t=" << guess;
    EXPECT_EQ(batched->sample_probability, unbatched->sample_probability);
    // Same probes on the oracle side, just reordered.
    EXPECT_EQ(oracle_a.counts().degree, oracle_b.counts().degree);
    EXPECT_EQ(oracle_a.counts().neighbor, oracle_b.counts().neighbor);
  }
}

TEST(LocalBatchTest, EstimateMinCutBatchedMatchesUnbatched) {
  Rng graph_rng(67);
  const UndirectedGraph graph =
      RandomUndirectedGraph(32, 0.3, 1.0, 1.0, true, graph_rng);
  for (const auto mode : {SearchMode::kOriginalEpsilonSearch,
                          SearchMode::kModifiedConstantSearch}) {
    GraphOracle oracle_a(graph);
    GraphOracle oracle_b(graph);
    Rng rng_a(91);
    Rng rng_b(91);
    const auto unbatched =
        EstimateMinCutLocalQueries(oracle_a, 0.5, mode, rng_a);
    const auto batched = EstimateMinCutBatched(oracle_b, 0.5, mode, rng_b);
    ASSERT_TRUE(unbatched.ok());
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->estimate, unbatched->estimate);
    EXPECT_EQ(batched->verify_guess_calls, unbatched->verify_guess_calls);
    EXPECT_EQ(batched->communication_bits, unbatched->communication_bits);
  }
}

}  // namespace
}  // namespace dcs
