#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(RngTest, CopyForksTheStream) {
  Rng a(7);
  a.Next();
  Rng b = a;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntBoundOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformInRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMean) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BinomialSmallNExactRange) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.Binomial(10, 0.4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, BinomialMeanMatches) {
  Rng rng(31);
  // Large n exercises both the inversion and normal-approximation paths.
  for (const auto& [n, p] : std::vector<std::pair<int64_t, double>>{
           {50, 0.3}, {500, 0.02}, {100000, 0.05}}) {
    double sum = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(rng.Binomial(n, p));
    }
    const double mean = sum / trials;
    const double expected = static_cast<double>(n) * p;
    const double tolerance =
        5 * std::sqrt(expected * (1 - p) / trials) + 0.5;
    EXPECT_NEAR(mean, expected, tolerance) << "n=" << n << " p=" << p;
  }
}

TEST(RngTest, BinomialDegenerateCases) {
  Rng rng(37);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100);
}

TEST(RngTest, NormalMoments) {
  Rng rng(41);
  double sum = 0;
  double sum_sq = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.05);
}

TEST(RngTest, RandomSignIsBalanced) {
  Rng rng(43);
  int positive = 0;
  for (int i = 0; i < 10000; ++i) positive += rng.RandomSign() > 0 ? 1 : 0;
  EXPECT_NEAR(positive / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(47);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, RandomSubsetProperties) {
  Rng rng(53);
  const std::vector<int> subset = rng.RandomSubset(20, 7);
  EXPECT_EQ(subset.size(), 7u);
  EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
  const std::set<int> unique(subset.begin(), subset.end());
  EXPECT_EQ(unique.size(), 7u);
  for (int v : subset) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, RandomSubsetFullAndEmpty) {
  Rng rng(59);
  EXPECT_TRUE(rng.RandomSubset(5, 0).empty());
  const std::vector<int> all = rng.RandomSubset(5, 5);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, RandomSubsetIsUniformish) {
  Rng rng(61);
  // Element 0 should appear in a 3-of-6 subset about half the time.
  int hits = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<int> subset = rng.RandomSubset(6, 3);
    if (std::find(subset.begin(), subset.end(), 0) != subset.end()) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.5, 0.04);
}

TEST(RngTest, RandomBinaryStringWithWeight) {
  Rng rng(67);
  const std::vector<uint8_t> bits = rng.RandomBinaryStringWithWeight(32, 12);
  EXPECT_EQ(bits.size(), 32u);
  int weight = 0;
  for (uint8_t b : bits) weight += b;
  EXPECT_EQ(weight, 12);
}

TEST(RngTest, RandomSignStringValues) {
  Rng rng(71);
  const std::vector<int8_t> signs = rng.RandomSignString(64);
  EXPECT_EQ(signs.size(), 64u);
  for (int8_t s : signs) {
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

}  // namespace
}  // namespace dcs
