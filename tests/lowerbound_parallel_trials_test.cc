// The parallel trial runners must be bit-identical to their serial runs:
// trial i draws everything from a private Rng(SubtaskSeed(base_seed, i)),
// so thread count can only change scheduling, never results.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "lowerbound/forall_encoding.h"
#include "lowerbound/foreach_encoding.h"
#include "lowerbound/twosum_solver.h"
#include "util/random.h"

namespace dcs {
namespace {

CutOracle MakeNoisyOracle(const DirectedGraph& graph, Rng& rng) {
  return NoisyCutOracle(graph, 0.05, rng);
}

TEST(ParallelTrialsTest, ForAllMatchesSerialForEveryThreadCount) {
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 8;
  params.beta = 1;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = MakeNoisyOracle;
  for (const auto mode : {ForAllDecoder::SubsetSelection::kGreedy,
                          ForAllDecoder::SubsetSelection::kEnumerate}) {
    const ForAllTrialResult serial =
        RunForAllTrials(params, 12, 777, factory, mode, 1);
    EXPECT_EQ(serial.trials, 12);
    for (const int threads : {2, 4}) {
      const ForAllTrialResult parallel =
          RunForAllTrials(params, 12, 777, factory, mode, threads);
      EXPECT_EQ(parallel.trials, serial.trials) << "threads " << threads;
      EXPECT_EQ(parallel.correct, serial.correct) << "threads " << threads;
    }
  }
}

TEST(ParallelTrialsTest, ForAllSeedChangesResults) {
  // Sanity check that the base seed actually reaches the trials (a stuck
  // seed would also pass the identity test above).
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 8;
  params.beta = 1;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = [](const DirectedGraph& graph,
                                            Rng& rng) -> CutOracle {
    return MaximalNoiseCutOracle(graph, 0.9, rng);
  };
  const auto mode = ForAllDecoder::SubsetSelection::kGreedy;
  int distinct = 0;
  const ForAllTrialResult base =
      RunForAllTrials(params, 24, 1, factory, mode, 2);
  for (const uint64_t seed : {uint64_t{2}, uint64_t{3}, uint64_t{4}}) {
    const ForAllTrialResult other =
        RunForAllTrials(params, 24, seed, factory, mode, 2);
    distinct += other.correct != base.correct ? 1 : 0;
  }
  EXPECT_GT(distinct, 0);
}

TEST(ParallelTrialsTest, ForEachMatchesSerialForEveryThreadCount) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = MakeNoisyOracle;
  const ForEachTrialResult serial =
      RunForEachTrials(params, 4, 10, 555, factory, 1);
  EXPECT_EQ(serial.probes, 40);
  for (const int threads : {2, 4}) {
    const ForEachTrialResult parallel =
        RunForEachTrials(params, 4, 10, 555, factory, threads);
    EXPECT_EQ(parallel.probes, serial.probes) << "threads " << threads;
    EXPECT_EQ(parallel.correct, serial.correct) << "threads " << threads;
  }
}

TEST(ParallelTrialsTest, TwoSumRepetitionsMatchSerial) {
  TwoSumParams params;
  params.num_pairs = 4;
  params.string_length = 100;
  params.alpha = 1;
  params.intersect_fraction = 0.25;
  Rng rng(99);
  const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
  const std::vector<TwoSumSolveResult> serial = SolveTwoSumViaMinCutRepeated(
      instance, 0.25, 3, 42, SearchMode::kModifiedConstantSearch, 1);
  ASSERT_EQ(serial.size(), 3u);
  const std::vector<TwoSumSolveResult> parallel =
      SolveTwoSumViaMinCutRepeated(instance, 0.25, 3, 42,
                                   SearchMode::kModifiedConstantSearch, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].disjoint_estimate, serial[i].disjoint_estimate);
    EXPECT_EQ(parallel[i].mincut_estimate, serial[i].mincut_estimate);
    EXPECT_EQ(parallel[i].total_queries, serial[i].total_queries);
    EXPECT_EQ(parallel[i].communication_bits, serial[i].communication_bits);
  }
}

TEST(ParallelTrialsTest, IncrementalSessionsAgreeWithOneShotQueries) {
  // An exact oracle's sessions (incremental flips) and its one-shot
  // queries are two implementations of the same cut function; the trial
  // accuracy of a decoder must not depend on which one it uses.
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 8;
  params.beta = 1;
  params.num_layers = 2;
  const SeededCutOracleFactory with_sessions =
      [](const DirectedGraph& graph, Rng&) -> CutOracle {
    return ExactCutOracle(graph);
  };
  const SeededCutOracleFactory query_only = [](const DirectedGraph& graph,
                                               Rng&) -> CutOracle {
    return CutOracle(
        [&graph](const VertexSet& side) { return graph.CutWeight(side); });
  };
  for (const auto mode : {ForAllDecoder::SubsetSelection::kGreedy,
                          ForAllDecoder::SubsetSelection::kEnumerate}) {
    const ForAllTrialResult fast =
        RunForAllTrials(params, 10, 31, with_sessions, mode, 1);
    const ForAllTrialResult slow =
        RunForAllTrials(params, 10, 31, query_only, mode, 1);
    EXPECT_EQ(fast.correct, slow.correct);
  }
}

}  // namespace
}  // namespace dcs
