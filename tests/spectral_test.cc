// Effective resistances and spectral sparsification: closed-form
// resistances on canonical graphs, Foster's theorem, series/parallel laws,
// and cut preservation of the Spielman–Srivastava sampler.

#include "spectral/laplacian.h"

#include <cmath>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {
namespace {

TEST(DenseSpdSolverTest, SolvesKnownSystem) {
  // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11].
  const DenseSpdSolver solver({4, 1, 1, 3}, 2);
  const std::vector<double> x = solver.Solve({1, 2});
  EXPECT_NEAR(x[0], 1.0 / 11, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11, 1e-12);
}

TEST(DenseSpdSolverTest, IdentityMatrix) {
  const DenseSpdSolver solver({1, 0, 0, 0, 1, 0, 0, 0, 1}, 3);
  const std::vector<double> x = solver.Solve({3, -1, 5});
  EXPECT_NEAR(x[0], 3, 1e-12);
  EXPECT_NEAR(x[1], -1, 1e-12);
  EXPECT_NEAR(x[2], 5, 1e-12);
}

TEST(DenseSpdSolverTest, ResidualIsTinyOnRandomSpdSystems) {
  Rng rng(1);
  const int n = 20;
  // A = Bᵀ B + I is SPD.
  std::vector<double> b_matrix(static_cast<size_t>(n) * n);
  for (auto& v : b_matrix) v = rng.Normal();
  std::vector<double> a(static_cast<size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = i == j ? 1.0 : 0.0;
      for (int k = 0; k < n; ++k) {
        dot += b_matrix[static_cast<size_t>(k) * n + i] *
               b_matrix[static_cast<size_t>(k) * n + j];
      }
      a[static_cast<size_t>(i) * n + j] = dot;
    }
  }
  std::vector<double> rhs(static_cast<size_t>(n));
  for (auto& v : rhs) v = rng.Normal();
  const DenseSpdSolver solver(a, n);
  const std::vector<double> x = solver.Solve(rhs);
  for (int i = 0; i < n; ++i) {
    double row = 0;
    for (int j = 0; j < n; ++j) {
      row += a[static_cast<size_t>(i) * n + j] * x[static_cast<size_t>(j)];
    }
    EXPECT_NEAR(row, rhs[static_cast<size_t>(i)], 1e-8);
  }
}

TEST(EffectiveResistanceTest, SingleEdge) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 2.0);  // conductance 2 → resistance 1/2
  const EffectiveResistances r(g);
  EXPECT_NEAR(r.Resistance(0, 1), 0.5, 1e-12);
}

TEST(EffectiveResistanceTest, PathIsSeries) {
  // Unit-weight path: resistance adds along the path.
  UndirectedGraph g(5);
  for (int v = 0; v < 4; ++v) g.AddEdge(v, v + 1, 1.0);
  const EffectiveResistances r(g);
  EXPECT_NEAR(r.Resistance(0, 4), 4.0, 1e-10);
  EXPECT_NEAR(r.Resistance(1, 3), 2.0, 1e-10);
}

TEST(EffectiveResistanceTest, ParallelEdgesAddConductance) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 3.0);  // total conductance 4
  const EffectiveResistances r(g);
  EXPECT_NEAR(r.Resistance(0, 1), 0.25, 1e-12);
}

TEST(EffectiveResistanceTest, CompleteGraphClosedForm) {
  // K_n with unit weights: R(u, v) = 2/n.
  const int n = 10;
  const UndirectedGraph g = CompleteGraph(n, 1.0);
  const EffectiveResistances r(g);
  EXPECT_NEAR(r.Resistance(0, 7), 2.0 / n, 1e-10);
  EXPECT_NEAR(r.Resistance(3, 9), 2.0 / n, 1e-10);
}

TEST(EffectiveResistanceTest, CycleClosedForm) {
  // Unit cycle C_n: R(u, v) = d·(n−d)/n for hop distance d.
  const int n = 8;
  const UndirectedGraph g = CycleGraph(n, 1.0);
  const EffectiveResistances r(g);
  EXPECT_NEAR(r.Resistance(0, 1), 1.0 * 7 / 8, 1e-10);
  EXPECT_NEAR(r.Resistance(0, 4), 4.0 * 4 / 8, 1e-10);
}

TEST(EffectiveResistanceTest, FostersTheorem) {
  // Σ_e w_e·R_e = n − 1 on any connected graph.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    const UndirectedGraph g =
        RandomUndirectedGraph(16, 0.35, 0.5, 2.0, true, rng);
    const EffectiveResistances r(g);
    const std::vector<double> edge_r = r.EdgeResistances();
    double total = 0;
    for (size_t i = 0; i < edge_r.size(); ++i) {
      total += g.edges()[i].weight * edge_r[i];
    }
    EXPECT_NEAR(total, 15.0, 1e-8) << "seed " << seed;
  }
}

TEST(EffectiveResistanceTest, ResistanceIsAMetricOnExamples) {
  Rng rng(9);
  const UndirectedGraph g =
      RandomUndirectedGraph(12, 0.4, 1.0, 1.0, true, rng);
  const EffectiveResistances r(g);
  // Symmetry and triangle inequality on sampled triples.
  for (int trial = 0; trial < 20; ++trial) {
    const int a = static_cast<int>(rng.UniformInt(12));
    const int b = static_cast<int>(rng.UniformInt(12));
    const int c = static_cast<int>(rng.UniformInt(12));
    if (a == b || b == c || a == c) continue;
    EXPECT_NEAR(r.Resistance(a, b), r.Resistance(b, a), 1e-10);
    EXPECT_LE(r.Resistance(a, c),
              r.Resistance(a, b) + r.Resistance(b, c) + 1e-10);
  }
}

TEST(SpectralSparsifyTest, PreservesCutsOnCompleteGraph) {
  // n and eps chosen so the sampling rate is genuinely below 1:
  // p = c·ln(n)/eps² · w·R = 0.5·4.38/0.25 · 2/80 ≈ 0.22.
  const UndirectedGraph g = CompleteGraph(80, 1.0);
  Rng rng(3);
  const UndirectedGraph h = SpectralSparsify(g, 0.5, rng, 0.5);
  EXPECT_LT(h.num_edges(), g.num_edges());
  Rng cut_rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    VertexSet side(80);
    for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
    if (!IsProperCutSide(side)) continue;
    const double exact = g.CutWeight(side);
    EXPECT_NEAR(h.CutWeight(side), exact, 0.35 * exact) << trial;
  }
}

TEST(SpectralSparsifyTest, KeepsBridgesSurely) {
  // A bridge has w·R = 1 — the maximum — so p = 1 at any sane rate.
  const UndirectedGraph g = DumbbellGraph(10, 1);
  Rng rng(5);
  const UndirectedGraph h = SpectralSparsify(g, 0.5, rng, 1.0);
  EXPECT_GT(StoerWagnerMinCut(h).value, 0);
}

TEST(SpectralSparsifyTest, SizeShrinksWithEpsilon) {
  const UndirectedGraph g = CompleteGraph(48, 1.0);
  Rng r1(6), r2(6);
  const UndirectedGraph tight = SpectralSparsify(g, 0.15, r1);
  const UndirectedGraph loose = SpectralSparsify(g, 0.6, r2);
  EXPECT_GT(tight.num_edges(), loose.num_edges());
}

}  // namespace
}  // namespace dcs
