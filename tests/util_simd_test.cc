// Property tests for the runtime SIMD dispatch layer (src/util/simd.h).
//
// The layer's contract is bit-identity: every dispatched kernel must return
// exactly the bytes the scalar reference returns, for int64 and double, at
// every size including non-multiple-of-lane tails. These tests pin that
// contract for the FWHT (contiguous and strided), the popcount kernels (via
// SignVector), the 2-D EncodeSigns transform, the arena, and a served
// batch under forced-scalar vs hardware dispatch.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/generators.h"
#include "graph/types.h"
#include "gtest/gtest.h"
#include "serve/cut_query_service.h"
#include "util/arena.h"
#include "util/hadamard.h"
#include "util/random.h"
#include "util/sign_vector.h"
#include "util/simd.h"

namespace dcs {
namespace {

// Restores hardware dispatch on scope exit so test order cannot leak a
// forced-scalar state into later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { simd::ForceScalar(force); }
  ~ScopedForceScalar() { simd::ForceScalar(false); }
};

std::vector<int64_t> RandomI64(size_t n, Rng& rng) {
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = static_cast<int64_t>(rng.Next() % 2001) - 1000;
  }
  return values;
}

std::vector<double> RandomF64(size_t n, Rng& rng) {
  std::vector<double> values(n);
  for (auto& v : values) {
    v = (static_cast<double>(rng.Next() % 4001) - 2000.0) / 16.0;
  }
  return values;
}

// O(n²) reference transform straight from the definition.
std::vector<int64_t> NaiveFwht(const std::vector<int64_t>& values) {
  const size_t n = values.size();
  std::vector<int64_t> out(n, 0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      const int sign =
          (std::popcount(static_cast<unsigned>(r) & static_cast<unsigned>(c)) &
           1)
              ? -1
              : 1;
      out[r] += sign * values[c];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ForceScalarOverridesHardwarePath) {
  const simd::DispatchPath hardware = simd::ActivePath();
  {
    ScopedForceScalar guard(true);
    EXPECT_EQ(simd::ActivePath(), simd::DispatchPath::kScalar);
  }
  EXPECT_EQ(simd::ActivePath(), hardware);
}

TEST(SimdDispatchTest, PathNamesAreStable) {
  EXPECT_STREQ(simd::DispatchPathName(simd::DispatchPath::kScalar), "scalar");
  EXPECT_STREQ(simd::DispatchPathName(simd::DispatchPath::kAvx2), "avx2");
  EXPECT_STREQ(simd::DispatchPathName(simd::DispatchPath::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// FWHT bit-identity: dispatched vs scalar reference
// ---------------------------------------------------------------------------

TEST(SimdFwhtTest, MatchesNaiveTransformSmall) {
  Rng rng(7);
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16},
                   size_t{64}, size_t{256}}) {
    std::vector<int64_t> values = RandomI64(n, rng);
    const std::vector<int64_t> expected = NaiveFwht(values);
    simd::Fwht(values.data(), n, 1);
    EXPECT_EQ(values, expected) << "n=" << n;
  }
}

TEST(SimdFwhtTest, Int64BitIdenticalToScalarAllPowerOfTwoSizes) {
  Rng rng(13);
  for (int log_n = 0; log_n <= 16; ++log_n) {
    const size_t n = size_t{1} << log_n;
    const std::vector<int64_t> input = RandomI64(n, rng);
    std::vector<int64_t> dispatched = input;
    std::vector<int64_t> reference = input;
    simd::Fwht(dispatched.data(), n, 1);
    simd::scalar::Fwht(reference.data(), n, 1);
    ASSERT_EQ(dispatched, reference) << "n=" << n;
  }
}

TEST(SimdFwhtTest, DoubleBitIdenticalToScalarAllPowerOfTwoSizes) {
  Rng rng(17);
  for (int log_n = 0; log_n <= 16; ++log_n) {
    const size_t n = size_t{1} << log_n;
    const std::vector<double> input = RandomF64(n, rng);
    std::vector<double> dispatched = input;
    std::vector<double> reference = input;
    simd::Fwht(dispatched.data(), n, 1);
    simd::scalar::Fwht(reference.data(), n, 1);
    for (size_t i = 0; i < n; ++i) {
      // Bit-level comparison: the contract is stronger than numeric
      // equality (NaN/−0.0 would differ).
      ASSERT_EQ(std::bit_cast<uint64_t>(dispatched[i]),
                std::bit_cast<uint64_t>(reference[i]))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdFwhtTest, StridedBitIdenticalToScalar) {
  Rng rng(19);
  for (const size_t stride : {size_t{2}, size_t{3}}) {
    for (int log_n = 0; log_n <= 10; ++log_n) {
      const size_t n = size_t{1} << log_n;
      const std::vector<int64_t> input = RandomI64(n * stride, rng);
      std::vector<int64_t> dispatched = input;
      std::vector<int64_t> reference = input;
      simd::Fwht(dispatched.data(), n, stride);
      simd::scalar::Fwht(reference.data(), n, stride);
      // Untouched gap elements must survive; compare the whole buffer.
      ASSERT_EQ(dispatched, reference) << "n=" << n << " stride=" << stride;
    }
  }
}

TEST(SimdFwhtTest, ButterflyRowsMatchesScalar) {
  Rng rng(23);
  for (const size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                         size_t{64}, size_t{1000}}) {
    const std::vector<int64_t> lo_in = RandomI64(n, rng);
    const std::vector<int64_t> hi_in = RandomI64(n, rng);
    std::vector<int64_t> lo_a = lo_in, hi_a = hi_in;
    std::vector<int64_t> lo_b = lo_in, hi_b = hi_in;
    simd::ButterflyRows(lo_a.data(), hi_a.data(), n);
    simd::scalar::ButterflyRows(lo_b.data(), hi_b.data(), n);
    EXPECT_EQ(lo_a, lo_b) << "n=" << n;
    EXPECT_EQ(hi_a, hi_b) << "n=" << n;
  }
}

TEST(SimdFwhtTest, ForcedScalarFwhtMatchesHardwarePath) {
  Rng rng(29);
  const size_t n = 4096;
  const std::vector<int64_t> input = RandomI64(n, rng);
  std::vector<int64_t> hardware = input;
  simd::Fwht(hardware.data(), n, 1);
  std::vector<int64_t> forced = input;
  {
    ScopedForceScalar guard(true);
    simd::Fwht(forced.data(), n, 1);
  }
  EXPECT_EQ(hardware, forced);
}

// ---------------------------------------------------------------------------
// Popcount kernels, via SignVector and directly
// ---------------------------------------------------------------------------

TEST(SimdPopcountTest, MatchesScalarAtAllWordCounts) {
  Rng rng(31);
  for (const size_t words :
       {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
        size_t{7}, size_t{8}, size_t{9}, size_t{16}, size_t{63}, size_t{64},
        size_t{65}, size_t{100}}) {
    std::vector<uint64_t> a(words), b(words);
    for (auto& w : a) w = rng.Next();
    for (auto& w : b) w = rng.Next();
    EXPECT_EQ(simd::XorPopcount(a.data(), b.data(), words),
              simd::scalar::XorPopcount(a.data(), b.data(), words))
        << words;
    EXPECT_EQ(simd::Popcount(a.data(), words),
              simd::scalar::Popcount(a.data(), words))
        << words;
  }
}

TEST(SimdPopcountTest, SignVectorInnerProductMatchesNaive) {
  Rng rng(37);
  // Sizes straddling word boundaries, incl. non-multiple-of-64 tails.
  for (const int64_t size : {int64_t{0}, int64_t{1}, int64_t{63}, int64_t{64},
                             int64_t{65}, int64_t{127}, int64_t{128},
                             int64_t{129}, int64_t{1000}, int64_t{4096},
                             int64_t{4097}}) {
    std::vector<int8_t> a(static_cast<size_t>(size)),
        b(static_cast<size_t>(size));
    for (auto& s : a) s = (rng.Next() & 1) ? int8_t{1} : int8_t{-1};
    for (auto& s : b) s = (rng.Next() & 1) ? int8_t{1} : int8_t{-1};
    int64_t naive_inner = 0;
    int64_t naive_sum = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      naive_inner += static_cast<int64_t>(a[i]) * b[i];
      naive_sum += a[i];
    }
    const SignVector pa = SignVector::FromSigns(a);
    const SignVector pb = SignVector::FromSigns(b);
    EXPECT_EQ(pa.InnerProduct(pb), naive_inner) << "size=" << size;
    EXPECT_EQ(pa.SumOfSigns(), naive_sum) << "size=" << size;
  }
}

TEST(SimdPopcountTest, AllMinusOnesEdgeCase) {
  // Every bit set in every word, incl. a partial tail word: the popcount
  // path must not count the (zero) tail bits beyond size.
  for (const int64_t size : {int64_t{64}, int64_t{65}, int64_t{129},
                             int64_t{1000}}) {
    const std::vector<int8_t> all_minus(static_cast<size_t>(size),
                                        int8_t{-1});
    const SignVector packed = SignVector::FromSigns(all_minus);
    EXPECT_EQ(packed.SumOfSigns(), -size);
    EXPECT_EQ(packed.InnerProduct(packed), size);
  }
}

// ---------------------------------------------------------------------------
// Hadamard row fast paths
// ---------------------------------------------------------------------------

TEST(SimdHadamardRowTest, PackedRowMatchesEntryDefinition) {
  for (const int log_size : {0, 1, 3, 6, 7, 10}) {
    const HadamardMatrix h(log_size);
    for (int row = 0; row < h.size(); row += std::max(1, h.size() / 7)) {
      const std::vector<int8_t> signs = h.Row(row);
      ASSERT_EQ(static_cast<int>(signs.size()), h.size());
      for (int col = 0; col < h.size(); ++col) {
        ASSERT_EQ(signs[static_cast<size_t>(col)], h.Entry(row, col))
            << "log=" << log_size << " row=" << row << " col=" << col;
      }
    }
  }
}

TEST(SimdHadamardRowTest, RowSignsIntoMatchesRow) {
  for (const int log_size : {0, 2, 5, 8}) {
    const HadamardMatrix h(log_size);
    std::vector<int8_t> scratch(static_cast<size_t>(h.size()));
    for (int row = 0; row < h.size(); ++row) {
      HadamardRowSignsInto(row, log_size, scratch);
      EXPECT_EQ(scratch, h.Row(row)) << "log=" << log_size << " row=" << row;
    }
  }
}

TEST(SimdHadamardRowTest, FactorIntoMatchesFactor) {
  const TensorSignMatrix tensor(4);
  std::vector<int8_t> scratch(static_cast<size_t>(tensor.block_size()));
  for (int64_t t = 0; t < tensor.rows(); t += 7) {
    tensor.LeftFactorInto(t, scratch);
    EXPECT_EQ(scratch, tensor.LeftFactor(t)) << t;
    tensor.RightFactorInto(t, scratch);
    EXPECT_EQ(scratch, tensor.RightFactor(t)) << t;
  }
}

// ---------------------------------------------------------------------------
// EncodeSigns: 2-D transform identical across dispatch paths
// ---------------------------------------------------------------------------

TEST(SimdEncodeSignsTest, ScalarAndDispatchedEncodeIdentically) {
  Rng rng(41);
  for (const int log_size : {1, 2, 4, 6}) {
    const TensorSignMatrix tensor(log_size);
    const std::vector<int8_t> z =
        rng.RandomSignString(static_cast<int>(tensor.rows()));
    const std::vector<int64_t> dispatched = tensor.EncodeSigns(z);
    std::vector<int64_t> forced;
    {
      ScopedForceScalar guard(true);
      forced = tensor.EncodeSigns(z);
    }
    EXPECT_EQ(dispatched, forced) << "log_size=" << log_size;
    // And both satisfy the defining identity ⟨x, M_t⟩ = z_t · N².
    for (int64_t t = 0; t < tensor.rows(); t += std::max<int64_t>(
             1, tensor.rows() / 5)) {
      EXPECT_EQ(tensor.InnerProductWithRow(dispatched, t),
                z[static_cast<size_t>(t)] * tensor.RowNormSquared())
          << "log_size=" << log_size << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// ScratchArena
// ---------------------------------------------------------------------------

TEST(ScratchArenaTest, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena(128);
  const std::span<int64_t> a = arena.Alloc<int64_t>(5);
  const std::span<int64_t> b = arena.Alloc<int64_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u);
  for (auto& v : a) v = 1;
  for (auto& v : b) v = 2;
  for (const auto& v : a) EXPECT_EQ(v, 1);
}

TEST(ScratchArenaTest, ScopeRewindReusesMemoryWithoutGrowth) {
  ScratchArena arena(1024);
  const int64_t* first = nullptr;
  const size_t capacity_before = [&] {
    ScratchArena::Scope scope(arena);
    first = arena.Alloc<int64_t>(64).data();
    return arena.capacity_bytes();
  }();
  for (int iter = 0; iter < 100; ++iter) {
    ScratchArena::Scope scope(arena);
    const std::span<int64_t> again = arena.Alloc<int64_t>(64);
    EXPECT_EQ(again.data(), first);
  }
  EXPECT_EQ(arena.capacity_bytes(), capacity_before);
}

TEST(ScratchArenaTest, GrowsBeyondInitialBlockAndKeepsData) {
  ScratchArena arena(64);
  const std::span<uint8_t> small = arena.Alloc<uint8_t>(16);
  for (auto& v : small) v = 7;
  const std::span<uint8_t> big = arena.Alloc<uint8_t>(1 << 12);
  for (auto& v : big) v = 9;
  for (const auto& v : small) EXPECT_EQ(v, 7);
  EXPECT_GE(arena.capacity_bytes(), size_t{1} << 12);
}

// ---------------------------------------------------------------------------
// Serving layer: answers identical under forced-scalar dispatch
// ---------------------------------------------------------------------------

TEST(SimdServeTest, BatchAnswersIdenticalAcrossDispatchPaths) {
  Rng rng(47);
  const DirectedGraph graph = RandomBalancedDigraph(24, 0.4, 1.0, rng);
  std::vector<CutQueryService::Query> batch;
  CutQueryService hardware_service;
  const auto object = hardware_service.RegisterGraph(graph);
  for (int i = 0; i < 40; ++i) {
    VertexSet side(24, 0);
    for (auto& bit : side) bit = static_cast<uint8_t>(rng.Next() & 1);
    batch.push_back({object, std::move(side)});
  }
  const std::vector<double> hardware = hardware_service.AnswerBatch(batch);

  ScopedForceScalar guard(true);
  CutQueryService scalar_service;
  const auto scalar_object = scalar_service.RegisterGraph(graph);
  ASSERT_EQ(scalar_object, object);
  const std::vector<double> forced = scalar_service.AnswerBatch(batch);
  ASSERT_EQ(hardware.size(), forced.size());
  for (size_t i = 0; i < hardware.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(hardware[i]),
              std::bit_cast<uint64_t>(forced[i]))
        << "query " << i;
  }
}

}  // namespace
}  // namespace dcs
