#include "util/check.h"

#include "gtest/gtest.h"

namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DCS_CHECK(true);
  DCS_CHECK_EQ(1, 1);
  DCS_CHECK_NE(1, 2);
  DCS_CHECK_LT(1, 2);
  DCS_CHECK_LE(2, 2);
  DCS_CHECK_GT(3, 2);
  DCS_CHECK_GE(3, 3);
}

TEST(CheckTest, ArgumentsEvaluatedExactlyOnce) {
  int counter = 0;
  DCS_CHECK_EQ(++counter, 1);
  EXPECT_EQ(counter, 1);
  DCS_CHECK_LT(counter++, 10);
  EXPECT_EQ(counter, 2);
}

TEST(CheckDeathTest, FailingChecksAbortWithContext) {
  EXPECT_DEATH(DCS_CHECK(false), "CHECK failed");
  EXPECT_DEATH(DCS_CHECK_EQ(1, 2), "1 == 2");
  EXPECT_DEATH(DCS_CHECK_GT(1, 2), "1 > 2");
}

TEST(CheckTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  DCS_DCHECK(false);  // compiled out in release builds
#else
  EXPECT_DEATH(DCS_DCHECK(false), "CHECK failed");
#endif
}

}  // namespace
